"""The observability substrate: tracer, metrics, profiler, metadata.

Covers the primitives in isolation and then the observer threaded
through a real (tiny) pipeline — the two-run byte-identity of the
artifacts is the load-bearing property.
"""

from __future__ import annotations

import json

import pytest

from repro import NULL_OBSERVER, Observer, Verfploeter, broot_like
from repro.bgp.cache import RoutingCache
from repro.core.experiments import prepend_sweep
from repro.obs import (
    MetricsRegistry,
    Profiler,
    TickClock,
    Tracer,
    metadata_fingerprint,
    run_metadata,
)


class TestTickClock:
    def test_each_read_advances_one_tick(self):
        clock = TickClock()
        assert [clock(), clock(), clock()] == [0.0, 1.0, 2.0]

    def test_start_and_step_are_configurable(self):
        clock = TickClock(start=10.0, step=0.5)
        assert [clock(), clock()] == [10.0, 10.5]


class TestTracer:
    def test_spans_nest_and_record_attributes(self):
        tracer = Tracer()
        with tracer.span("outer", round_id=3) as outer:
            with tracer.span("inner") as inner:
                inner.set(items=7)
            outer.set(done=True)
        assert tracer.span_names() == ["outer", "inner"]
        root = tracer.find("outer")
        assert root.attributes == {"round_id": 3, "done": True}
        assert [child.name for child in root.children] == ["inner"]
        assert root.find("inner").attributes == {"items": 7}

    def test_tick_timestamps_bracket_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.find("outer"), tracer.find("inner")
        assert outer.start < inner.start < inner.end < outer.end
        assert outer.duration == 3.0  # four tick reads

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.current() is None
        assert tracer.find("doomed").end is not None

    def test_to_json_is_deterministic(self):
        def run():
            tracer = Tracer()
            with tracer.span("a", x=1):
                with tracer.span("b"):
                    pass
            return tracer.to_json(meta={"seed": 1})

        assert run() == run()
        payload = json.loads(run())
        assert payload["version"] == 1
        assert payload["meta"] == {"seed": 1}
        assert payload["spans"][0]["name"] == "a"


class TestMetrics:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("replies").inc(3)
        registry.counter("replies").inc()
        registry.gauge("fraction", site="LAX").set(0.75)
        registry.histogram("rtt").observe(10.0)
        assert registry.value_of("replies") == 4
        assert registry.value_of("fraction", site="LAX") == 0.75
        assert registry.value_of("rtt")["count"] == 1

    def test_label_encoding_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("drop", rule="late", site="LAX").inc()
        payload = json.loads(registry.to_json())
        (name,) = payload["counters"]
        assert name == "drop{rule=late,site=LAX}"

    def test_render_text_aligns_and_sorts(self):
        registry = MetricsRegistry()
        registry.counter("bbb").inc(2)
        registry.counter("a").inc(1)
        text = registry.render_text()
        lines = text.splitlines()
        assert lines[0].startswith("metrics")
        assert lines[1].strip().startswith("a")

    def test_null_metrics_absorb_everything(self):
        metrics = NULL_OBSERVER.metrics
        metrics.counter("x").inc()
        metrics.gauge("y", site="Z").set(1.0)
        metrics.histogram("h").observe(5.0)
        assert len(metrics) == 0
        assert metrics.value_of("x") == 0


class TestProfiler:
    def test_sections_accumulate(self):
        profiler = Profiler()
        with profiler.section("work"):
            pass
        with profiler.section("work"):
            pass
        timing = profiler.timings()["work"]
        assert timing.calls == 2
        assert timing.seconds >= 0.0
        assert "work" in profiler.report()

    def test_observer_profile_is_noop_without_profiler(self):
        observer = Observer.collecting()
        with observer.profile("anything"):
            pass
        assert observer.profiler is None


class TestRunMetadata:
    def test_fingerprint_keys_on_identity_only(self):
        base = run_metadata(scenario="broot", scale="tiny", seed=7)
        extra = run_metadata(scenario="broot", scale="tiny", seed=7, rounds=96)
        assert base["fingerprint"] == extra["fingerprint"]
        assert extra["rounds"] == 96
        other = run_metadata(scenario="broot", scale="tiny", seed=8)
        assert other["fingerprint"] != base["fingerprint"]

    def test_fingerprint_is_order_insensitive(self):
        assert metadata_fingerprint({"a": 1, "b": 2}) == metadata_fingerprint(
            {"b": 2, "a": 1}
        )


@pytest.fixture(scope="module")
def observed_scan():
    scenario = broot_like(scale="tiny")
    observer = Observer.collecting()
    vp = Verfploeter(scenario.internet, scenario.service, observer=observer)
    scan = vp.run_scan()
    return scan, observer


class TestPipelineInstrumentation:
    def test_scan_emits_the_documented_span_tree(self, observed_scan):
        _, observer = observed_scan
        root = observer.tracer.find("scan.round")
        children = [child.name for child in root.children]
        assert children == [
            "probe.schedule", "scan.probe_replies", "collector.merge",
            "cleaning.pass", "catchment.map",
        ]

    def test_reply_conservation(self, observed_scan):
        _, observer = observed_scan
        metrics = observer.metrics
        received = metrics.value_of("collector.replies_received")
        kept = metrics.value_of("cleaning.kept")
        dropped = sum(
            metrics.value_of("cleaning.dropped", rule=rule) or 0
            for rule in ("wrong_round", "unsolicited", "late", "duplicate")
        )
        assert kept + dropped == received
        assert metrics.value_of("probe.probes_sent") >= received

    def test_catchment_fractions_match_scan(self, observed_scan):
        scan, observer = observed_scan
        for site, fraction in scan.catchment.fractions().items():
            recorded = observer.metrics.value_of(
                "catchment.fraction", site=site
            )
            assert recorded == pytest.approx(fraction)

    def test_null_observer_records_nothing(self):
        scenario = broot_like(scale="tiny")
        vp = Verfploeter(scenario.internet, scenario.service)
        vp.run_scan()
        assert vp.observer is NULL_OBSERVER
        assert NULL_OBSERVER.tracer.span_names() == []
        assert len(NULL_OBSERVER.metrics) == 0

    def test_two_seeded_runs_emit_identical_artifacts(self):
        def run():
            scenario = broot_like(scale="tiny")
            observer = Observer.collecting()
            vp = Verfploeter(
                scenario.internet, scenario.service, observer=observer
            )
            vp.run_scan()
            meta = run_metadata(
                scenario="broot", scale="tiny", seed=scenario.internet.seed
            )
            return (
                observer.tracer.to_json(meta=meta),
                observer.metrics.to_json(meta=meta),
            )

        assert run() == run()


class TestRoutingCacheCounters:
    def test_sweep_counts_one_full_then_deltas(self):
        scenario = broot_like(scale="tiny")
        observer = Observer.collecting()
        vp = Verfploeter(
            scenario.internet, scenario.service, observer=observer
        )
        cache = RoutingCache(observer=observer)
        prepend_sweep(
            vp, scenario.atlas,
            configs=[("baseline", {}), ("+1 MIA", {"MIA": 1})],
            cache=cache,
        )
        metrics = observer.metrics
        assert metrics.value_of("routing.cache.full_computes") == 1
        # The explicit baseline config is a cache hit; +1 MIA is a delta.
        assert metrics.value_of("routing.cache.delta_computes") == 1
        assert metrics.value_of("routing.cache.hits") >= 1
