"""Tests for the open-resolver measurement platform."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.resolvers.platform import OpenResolverPlatform


@pytest.fixture(scope="module")
def platform(broot_tiny):
    return OpenResolverPlatform(broot_tiny.internet)


class TestDiscovery:
    def test_density(self, broot_tiny, platform):
        fraction = len(platform) / len(broot_tiny.internet)
        assert 0.02 < fraction < 0.08  # ~4.5% of blocks host open resolvers

    def test_shutdown_removes_resolvers(self, broot_tiny):
        full = OpenResolverPlatform(broot_tiny.internet, shutdown_fraction=0.0)
        shrunk = OpenResolverPlatform(broot_tiny.internet, shutdown_fraction=0.6)
        assert len(shrunk) < len(full)
        # Survivors are a subset of the historical population.
        assert set(shrunk.resolver_blocks) <= set(full.resolver_blocks)

    def test_deterministic(self, broot_tiny):
        first = OpenResolverPlatform(broot_tiny.internet)
        second = OpenResolverPlatform(broot_tiny.internet)
        assert first.resolver_blocks == second.resolver_blocks

    def test_config_validation(self, broot_tiny):
        with pytest.raises(ConfigurationError):
            OpenResolverPlatform(broot_tiny.internet, base_density=0.0)
        with pytest.raises(ConfigurationError):
            OpenResolverPlatform(broot_tiny.internet, shutdown_fraction=1.0)


class TestMeasurement:
    def test_sites_match_routing(self, broot_tiny, broot_routing, platform):
        measurement = platform.measure(
            broot_routing, broot_tiny.service, measurement_id=2
        )
        assert measurement.considered_resolvers == len(platform)
        assert measurement.responding
        for result in measurement.responding:
            assert result.site_code == broot_routing.site_of_block(result.block, 2)
            assert result.hostname.startswith(result.site_code.lower())

    def test_some_resolvers_busy(self, broot_tiny, broot_routing, platform):
        measurement = platform.measure(broot_routing, broot_tiny.service)
        assert len(measurement.responding) < measurement.considered_resolvers

    def test_fractions_sum(self, broot_tiny, broot_routing, platform):
        measurement = platform.measure(broot_routing, broot_tiny.service)
        assert sum(measurement.fractions().values()) == pytest.approx(1.0)

    def test_coverage_between_atlas_and_verfploeter(
        self, broot_tiny, broot_routing, broot_scan, platform
    ):
        """Historically: more VPs than Atlas, fewer than Verfploeter."""
        atlas = broot_tiny.atlas.measure(broot_routing, broot_tiny.service)
        resolver_blocks = len(
            platform.measure(broot_routing, broot_tiny.service).responding_blocks()
        )
        assert len(atlas.responding_blocks()) < resolver_blocks
        assert resolver_blocks < broot_scan.mapped_blocks
