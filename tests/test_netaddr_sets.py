"""Tests for prefix sets and aggregation."""

from __future__ import annotations

import pytest

from repro.netaddr.prefix import Prefix
from repro.netaddr.sets import PrefixSet


class TestMembership:
    def test_add_and_contains(self):
        prefixes = PrefixSet([Prefix("10.0.0.0/8")])
        assert Prefix("10.0.0.0/8") in prefixes
        assert Prefix("11.0.0.0/8") not in prefixes

    def test_discard(self):
        prefixes = PrefixSet([Prefix("10.0.0.0/8")])
        prefixes.discard(Prefix("10.0.0.0/8"))
        assert len(prefixes) == 0

    def test_covers_address(self):
        prefixes = PrefixSet([Prefix("10.0.0.0/8")])
        assert prefixes.covers_address(0x0A123456)
        assert not prefixes.covers_address(0x0B000000)

    def test_covering_prefix_longest(self):
        prefixes = PrefixSet([Prefix("10.0.0.0/8"), Prefix("10.1.0.0/16")])
        assert prefixes.covering_prefix(0x0A010101) == Prefix("10.1.0.0/16")

    def test_covering_prefix_raises(self):
        with pytest.raises(KeyError):
            PrefixSet().covering_prefix(0)

    def test_iteration_sorted(self):
        prefixes = PrefixSet([Prefix("11.0.0.0/8"), Prefix("10.0.0.0/8")])
        assert [str(p) for p in prefixes] == ["10.0.0.0/8", "11.0.0.0/8"]


class TestAggregation:
    def test_merges_siblings(self):
        prefixes = PrefixSet([Prefix("10.0.0.0/9"), Prefix("10.128.0.0/9")])
        assert list(prefixes.aggregated()) == [Prefix("10.0.0.0/8")]

    def test_drops_covered_subnets(self):
        prefixes = PrefixSet([Prefix("10.0.0.0/8"), Prefix("10.1.0.0/16")])
        assert list(prefixes.aggregated()) == [Prefix("10.0.0.0/8")]

    def test_cascading_merge(self):
        quarters = [
            Prefix("10.0.0.0/10"),
            Prefix("10.64.0.0/10"),
            Prefix("10.128.0.0/10"),
            Prefix("10.192.0.0/10"),
        ]
        assert list(PrefixSet(quarters).aggregated()) == [Prefix("10.0.0.0/8")]

    def test_non_siblings_kept(self):
        prefixes = PrefixSet([Prefix("10.128.0.0/9"), Prefix("11.0.0.0/9")])
        assert len(prefixes.aggregated()) == 2

    def test_address_count(self):
        prefixes = PrefixSet(
            [Prefix("10.0.0.0/9"), Prefix("10.128.0.0/9"), Prefix("10.0.0.0/16")]
        )
        assert prefixes.address_count() == 1 << 24
