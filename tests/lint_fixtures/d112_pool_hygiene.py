"""Fixture: D112 — pool machinery outside repro.core.pool."""

from concurrent.futures import ProcessPoolExecutor  # MARK

import multiprocessing  # MARK


def fan_out(items):
    """Fan work out with an unpicklable (nested) pool target."""

    def _work(item):
        return item + 1

    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(_work, items))  # MARK
