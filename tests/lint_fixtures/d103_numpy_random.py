"""Fixture: D103 — numpy's global random state."""

import numpy as np


def draw(n: int):
    """Fixture helper (draw)."""
    return np.random.rand(n)  # MARK
