"""Fixture: E301 — raising outside the repro.errors hierarchy."""


def pick(mapping, key):
    """Fixture helper (pick)."""
    if key not in mapping:
        raise RuntimeError(f"no such key {key!r}")  # MARK
    return mapping[key]
