"""Fixture: D108 — set.pop() removes an arbitrary element."""


def drain(items) -> int:
    """Fixture helper (drain)."""
    pending = set(items)
    total = 0
    while pending:
        total += pending.pop()  # MARK
    return total
