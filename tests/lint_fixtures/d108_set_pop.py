"""Fixture: D108 — set.pop() removes an arbitrary element."""


def drain(items) -> int:
    pending = set(items)
    total = 0
    while pending:
        total += pending.pop()  # MARK
    return total
