"""Fixture: E302 — swallowing Exception without re-raise."""


def safe_int(text: str) -> int:
    """Fixture helper (safe_int)."""
    try:
        return int(text)
    except Exception:  # MARK
        return 0
