"""Fixture: D110 — per-element dict/set growth in a hot-path module."""
# reprolint: hot-path

from typing import Dict, List, Set


def tally_sites(sites: List[str]) -> Dict[str, int]:
    """Fixture helper (tally_sites)."""
    counts: Dict[str, int] = {}
    for site in sites:
        counts[site] = counts.get(site, 0) + 1  # MARK
    return counts


def flipping_blocks(blocks: List[int]) -> Set[int]:
    """Fixture helper (flipping_blocks)."""
    seen = set()
    for block in blocks:
        seen.add(block)  # MARK
    return seen


def reference_tally(sites: List[str]) -> Dict[str, int]:
    """A sanctioned reference path: the disable comment silences D110."""
    counts: Dict[str, int] = {}
    for site in sites:
        counts[site] = counts.get(site, 0) + 1  # reprolint: disable=D110
    return counts
