"""Fixture: D102 — random.Random() without a seed."""

import random


def make_rng():
    """Fixture helper (make_rng)."""
    return random.Random()  # MARK
