"""Fixture: D109 — instance/mutable defaults evaluated at import time."""

from typing import List


class RetryPolicy:
    def __init__(self, attempts: int = 3) -> None:
        self.attempts = attempts


def fetch(url: str, policy: RetryPolicy = RetryPolicy()) -> str:  # MARK
    return f"{url}:{policy.attempts}"


def merge(item: int, into: List[int] = []) -> List[int]:  # MARK
    into.append(item)
    return into
