"""Fixture: D109 — instance/mutable defaults evaluated at import time."""

from typing import List


class RetryPolicy:
    """Fixture helper (RetryPolicy)."""
    def __init__(self, attempts: int = 3) -> None:
        self.attempts = attempts


def fetch(url: str, policy: RetryPolicy = RetryPolicy()) -> str:  # MARK
    """Fixture helper (fetch)."""
    return f"{url}:{policy.attempts}"


def merge(item: int, into: List[int] = []) -> List[int]:  # MARK
    """Fixture helper (merge)."""
    into.append(item)
    return into
