"""Fixture: D101 — call into the global random module."""

import random


def jitter() -> float:
    """Fixture helper (jitter)."""
    return random.random()  # MARK
