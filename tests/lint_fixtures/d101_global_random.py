"""Fixture: D101 — call into the global random module."""

import random


def jitter() -> float:
    return random.random()  # MARK
