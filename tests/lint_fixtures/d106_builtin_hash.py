"""Fixture: D106 — builtin hash() outside __hash__."""


class Key:
    """Fixture helper (Key)."""
    def __init__(self, label: str) -> None:
        self.label = label

    def __hash__(self) -> int:
        return hash(self.label)  # allowed: inside __hash__


def bucket_of(label: str, buckets: int) -> int:
    """Fixture helper (bucket_of)."""
    return hash(label) % buckets  # MARK
