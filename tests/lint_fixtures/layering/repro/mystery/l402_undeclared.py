"""Fixture: L402 — a repro subpackage missing from the layer DAG."""

WHO_AM_I = "not in repro.lint.layers.LAYERS"  # MARK (reported at line 1)
