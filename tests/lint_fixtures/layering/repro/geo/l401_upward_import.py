"""Fixture: L401 — a layer-1 package importing from layer 4."""

from repro.core.verfploeter import Verfploeter  # MARK


def measure(verfploeter: Verfploeter):
    return verfploeter.run_scan()
