"""Fixture: clean library code — zero findings expected.

Also demonstrates every sanctioned pattern: derived RNG streams,
sorted set iteration, repro.errors raises, and an explicit per-line
suppression of an intentional global-random call.
"""

import random

from repro.errors import ConfigurationError
from repro.rng import derive_rng


def shuffled(items, seed: int):
    """Fixture helper (shuffled)."""
    rng = derive_rng(seed, "clean-fixture/shuffle")
    ordered = sorted(items)
    rng.shuffle(ordered)
    return ordered


def totals(groups):
    """Fixture helper (totals)."""
    out = []
    for name in sorted(groups):
        out.append((name, len(groups[name])))
    return out


def check_positive(value: int) -> int:
    """Fixture helper (check_positive)."""
    if value <= 0:
        raise ConfigurationError("value must be positive")
    return value


def legacy_jitter() -> float:
    """Fixture helper (legacy_jitter)."""
    return random.random()  # reprolint: disable=D101
