"""Fixture: D105 — OS entropy in library code."""

import os


def token() -> bytes:
    return os.urandom(8)  # MARK
