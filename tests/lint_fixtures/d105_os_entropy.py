"""Fixture: D105 — OS entropy in library code."""

import os


def token() -> bytes:
    """Fixture helper (token)."""
    return os.urandom(8)  # MARK
