"""Fixture: S202 — a literal label an f-string label can expand to."""

from repro.rng import derive_seed


def per_round(seed: int, round_id: int) -> int:
    """Fixture helper (per_round)."""
    return derive_seed(seed, f"round-{round_id}")


def fixed(seed: int) -> int:
    """Fixture helper (fixed)."""
    return derive_seed(seed, "round-7")  # MARK
