"""W501 clean fixture: the forwarded label names a distinct stream."""

from repro.rng import derive_seed


def _derive(seed, label):
    return derive_seed(seed, label)


def consumer(seed):
    """Distinct effective label; no collision."""
    return _derive(seed, "scan/replies")
