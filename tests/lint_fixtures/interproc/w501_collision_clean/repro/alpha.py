"""W501 clean fixture: direct derivation half."""

from repro.rng import derive_seed


def order_seed(seed):
    """Derive the scan-order stream directly."""
    return derive_seed(seed, "scan/order")
