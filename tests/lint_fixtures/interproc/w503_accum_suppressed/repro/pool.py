"""W503 suppressed fixture: the accumulation carries a justification."""

from concurrent.futures import ProcessPoolExecutor


def _partial_sum(values):
    total = 0.0
    for value in values:
        total += value * 0.5  # reprolint: disable=W503 — shard boundaries are fixed by config
    return total


def _worker(payload):
    return _partial_sum(payload)


def run(shards):
    """Fan shards over a process pool."""
    with ProcessPoolExecutor() as pool:
        return sum(pool.map(_worker, shards))
