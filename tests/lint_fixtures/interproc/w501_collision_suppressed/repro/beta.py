"""W501 suppressed fixture: the collision site carries a suppression."""

from repro.rng import derive_seed


def _derive(seed, label):
    return derive_seed(seed, label)


def consumer(seed):
    """Suppressed in place, with a recorded justification."""
    return _derive(seed, "scan/order")  # reprolint: disable=W501 — shared stream is intentional here
