"""W502 fixture: a pool-reachable callee mutates a module global.

D112 sees nothing wrong here — the submit target is a top-level
function — but the worker's *callee* writes into module state, which
each spawn worker owns a private re-imported copy of.
"""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}


def _record(key, value):
    _RESULTS[key] = value  # MARK


def _worker(payload):
    _record(payload, payload * 2)
    return payload


def run(items):
    """Fan the items over a process pool."""
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_worker, items))
