"""W501 suppressed fixture: the entropy origin."""

import random


def _jitter():
    return random.random()  # reprolint: disable=D101 — fixture origin
