"""W501 suppressed fixture: the tainted call site is suppressed too."""

from repro.noise import _jitter


def schedule(base):
    """Suppressed in place, with a recorded justification."""
    return base + _jitter()  # reprolint: disable=W501 — jitter is non-result-bearing here
