"""W502 suppressed fixture: the mutation carries a justification."""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}


def _record(key, value):
    _RESULTS[key] = value  # reprolint: disable=W502 — worker-local diagnostic, never read back

def _worker(payload):
    _record(payload, payload * 2)
    return payload


def run(items):
    """Fan the items over a process pool."""
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_worker, items))
