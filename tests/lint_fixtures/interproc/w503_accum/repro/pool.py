"""W503 fixture: a shard worker's callee grows a float accumulator.

Each shard produces a partial float sum; merging partials regroups
the additions, so results depend on the shard boundaries.
"""

from concurrent.futures import ProcessPoolExecutor


def _partial_sum(values):
    total = 0.0
    for value in values:
        total += value * 0.5  # MARK
    return total


def _worker(payload):
    return _partial_sum(payload)


def run(shards):
    """Fan shards over a process pool."""
    with ProcessPoolExecutor() as pool:
        return sum(pool.map(_worker, shards))
