"""W501 fixture: a forwarder expands a caller-supplied label.

No single file contains two copies of the literal, so the per-file
S201 pass sees nothing; only expansion at the call site reveals that
this module re-derives the label alpha.py already owns.
"""

from repro.rng import derive_seed


def _derive(seed, label):
    return derive_seed(seed, label)


def consumer(seed):
    """Effective label collides with repro.alpha's direct site."""
    return _derive(seed, "scan/order")  # MARK
