"""W501 fixture: module deriving a stream under a literal label."""

from repro.rng import derive_seed


def order_seed(seed):
    """Derive the scan-order stream directly."""
    return derive_seed(seed, "scan/order")
