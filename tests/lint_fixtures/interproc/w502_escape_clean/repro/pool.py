"""W502 clean fixture: workers return results instead of sharing state."""

from concurrent.futures import ProcessPoolExecutor


def _worker(payload):
    results = {}
    results[payload] = payload * 2
    return results


def run(items):
    """Fan the items over a process pool; the parent merges returns."""
    merged = {}
    with ProcessPoolExecutor() as pool:
        for part in pool.map(_worker, items):
            merged.update(part)
    return merged
