"""W503 clean fixture: workers keep integer columns; floats stay parental."""

from concurrent.futures import ProcessPoolExecutor


def _partial_count(values):
    count = 0
    for value in values:
        count += int(value)
    return count


def run(shards):
    """Integer partials merge associatively; the parent scales once."""
    with ProcessPoolExecutor() as pool:
        return sum(pool.map(_partial_count, shards)) * 0.5
