"""W501 clean fixture: the caller threads a derived stream through."""

from repro.noise import _jitter


def schedule(base, seed):
    """Clean: the callee draws from an explicit derived stream."""
    return base + _jitter(seed)
