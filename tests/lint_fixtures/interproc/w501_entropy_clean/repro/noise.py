"""W501 clean fixture: randomness flows from an explicit seed."""

from repro.rng import derive_rng


def _jitter(seed):
    return derive_rng(seed, "noise/jitter").random()
