"""W501 fixture: unseeded randomness behind a local suppression."""

import random


def _jitter():
    return random.random()  # reprolint: disable=D101 — fixture origin
