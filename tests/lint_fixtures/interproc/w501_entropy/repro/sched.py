"""W501 fixture: a cross-module call reaching the suppressed draw.

The suppression in noise.py silences D101 *on that line only*; this
caller still inherits interpreter-wide hidden state, which is exactly
what the taint half of W501 reports.
"""

from repro.noise import _jitter


def schedule(base):
    """Tainted: the callee draws from the global random stream."""
    return base + _jitter()  # MARK
