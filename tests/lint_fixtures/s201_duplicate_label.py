"""Fixture: S201 — the same seed label derived at two call sites."""

from repro.rng import derive_seed


def first_stream(seed: int) -> int:
    """Fixture helper (first_stream)."""
    return derive_seed(seed, "shared-label")  # MARK


def second_stream(seed: int) -> int:
    """Fixture helper (second_stream)."""
    return derive_seed(seed, "shared-label")  # MARK2
