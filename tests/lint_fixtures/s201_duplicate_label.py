"""Fixture: S201 — the same seed label derived at two call sites."""

from repro.rng import derive_seed


def first_stream(seed: int) -> int:
    return derive_seed(seed, "shared-label")  # MARK


def second_stream(seed: int) -> int:
    return derive_seed(seed, "shared-label")  # MARK2
