"""Fixture: undocumented public API (D111).

Three violations: the bare public function, the bare public class, and
the class's undocumented public method.  Private names, documented
names, and members of private classes are exempt.
"""


def bare_function():  # MARK
    return 1


class BareClass:
    def bare_method(self):
        return 2

    def _private_method(self):
        return 3

    def documented_method(self):
        """Documented: exempt."""
        return 4


def documented_function():
    """Documented: exempt."""
    return 5


def _private_function():
    return 6


class _PrivateClass:
    def member_of_private_class(self):
        return 7
