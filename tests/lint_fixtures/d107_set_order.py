"""Fixture: D107 — set iteration order leaking into a list."""

from typing import List


def neighbors_of(edges) -> List[int]:
    seen = {b for _, b in edges}
    result: List[int] = []
    for node in seen:  # MARK
        result.append(node)
    return result
