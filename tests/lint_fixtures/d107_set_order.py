"""Fixture: D107 — set iteration order leaking into a list."""

from typing import List


def neighbors_of(edges) -> List[int]:
    """Fixture helper (neighbors_of)."""
    seen = {b for _, b in edges}
    result: List[int] = []
    for node in seen:  # MARK
        result.append(node)
    return result
