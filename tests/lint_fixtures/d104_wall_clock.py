"""Fixture: D104 — wall-clock read in library code."""

import time


def stamp() -> float:
    return time.time()  # MARK
