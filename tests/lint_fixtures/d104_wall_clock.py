"""Fixture: D104 — wall-clock read in library code."""

import time


def stamp() -> float:
    """Fixture helper (stamp)."""
    return time.time()  # MARK
