"""Tests for the geolocation substrate."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, DatasetError
from repro.geo.distance import haversine_km
from repro.geo.geodb import GeoDatabase, GeoRecord
from repro.geo.grid import GeoGrid
from repro.geo.regions import (
    COUNTRIES,
    Region,
    country_by_code,
    countries_in_region,
)


class TestRegions:
    def test_all_codes_unique(self):
        codes = [country.code for country in COUNTRIES]
        assert len(codes) == len(set(codes))

    def test_lookup(self):
        assert country_by_code("NL").name == "Netherlands"

    def test_unknown_code(self):
        with pytest.raises(ConfigurationError):
            country_by_code("ZZ")

    def test_regions_valid(self):
        for country in COUNTRIES:
            assert country.region in Region.ALL

    def test_countries_in_region(self):
        europe = countries_in_region(Region.EUROPE)
        assert country_by_code("DE") in europe
        assert country_by_code("CN") not in europe

    def test_unknown_region(self):
        with pytest.raises(ConfigurationError):
            countries_in_region("XX")

    def test_bounding_boxes_sane(self):
        for country in COUNTRIES:
            assert -90 <= country.lat_range[0] < country.lat_range[1] <= 90
            assert -180 <= country.lon_range[0] < country.lon_range[1] <= 180

    def test_atlas_skew_is_european(self):
        """The documented Atlas skew: Europe much denser than Asia."""
        def density(code):
            country = country_by_code(code)
            return country.atlas_weight / country.internet_weight

        assert density("DE") > 10 * density("CN")
        assert density("NL") > 10 * density("IN")

    def test_centroid_inside_box(self):
        for country in COUNTRIES:
            lat, lon = country.centroid
            assert country.lat_range[0] <= lat <= country.lat_range[1]
            assert country.lon_range[0] <= lon <= country.lon_range[1]


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(52.0, 5.0, 52.0, 5.0) == 0.0

    def test_known_distance_amsterdam_london(self):
        distance = haversine_km(52.37, 4.90, 51.51, -0.13)
        assert 340 < distance < 380

    def test_antipodal(self):
        distance = haversine_km(0, 0, 0, 180)
        assert math.isclose(distance, math.pi * 6371.0, rel_tol=1e-6)

    def test_symmetry(self):
        assert haversine_km(10, 20, 30, 40) == haversine_km(30, 40, 10, 20)


class TestGeoDatabase:
    def test_add_and_locate(self):
        geodb = GeoDatabase()
        geodb.add(5, GeoRecord("NL", 52.0, 5.0))
        assert geodb.locate(5).country_code == "NL"
        assert geodb.country_of(5) == "NL"

    def test_missing_block(self):
        geodb = GeoDatabase()
        assert geodb.locate(5) is None
        assert geodb.country_of(5) is None

    def test_require_raises(self):
        with pytest.raises(DatasetError):
            GeoDatabase().require(5)

    def test_add_many_and_len(self):
        geodb = GeoDatabase()
        geodb.add_many((i, GeoRecord("US", 40.0, -100.0)) for i in range(10))
        assert len(geodb) == 10
        assert 3 in geodb

    def test_replace(self):
        geodb = GeoDatabase()
        geodb.add(1, GeoRecord("US", 40.0, -100.0))
        geodb.add(1, GeoRecord("DE", 50.0, 10.0))
        assert geodb.country_of(1) == "DE"
        assert len(geodb) == 1


class TestGeoGrid:
    def test_accumulates_weight(self):
        grid = GeoGrid(2.0)
        grid.add(52.1, 5.1, "A")
        grid.add(52.3, 5.3, "A", weight=2.0)
        cells = list(grid.cells())
        assert len(cells) == 1
        assert cells[0].weights["A"] == 3.0

    def test_separate_cells(self):
        grid = GeoGrid(2.0)
        grid.add(0.0, 0.0, "A")
        grid.add(10.0, 10.0, "B")
        assert len(grid) == 2

    def test_dominant_site(self):
        grid = GeoGrid(2.0)
        grid.add(0.0, 0.0, "A", weight=1.0)
        grid.add(0.5, 0.5, "B", weight=3.0)
        cell = next(grid.cells())
        assert cell.dominant_site() == "B"

    def test_dominant_tie_breaks_alphabetically(self):
        grid = GeoGrid(2.0)
        grid.add(0.0, 0.0, "B", weight=1.0)
        grid.add(0.0, 0.0, "A", weight=1.0)
        assert next(grid.cells()).dominant_site() == "A"

    def test_site_totals(self):
        grid = GeoGrid(2.0)
        grid.add(0.0, 0.0, "A", 1.0)
        grid.add(30.0, 30.0, "A", 2.0)
        grid.add(30.0, 30.0, "B", 5.0)
        assert grid.site_totals() == {"A": 3.0, "B": 5.0}

    def test_top_cells(self):
        grid = GeoGrid(2.0)
        grid.add(0.0, 0.0, "A", 1.0)
        grid.add(30.0, 30.0, "A", 10.0)
        top = grid.top_cells(1)
        assert len(top) == 1
        assert top[0].total == 10.0

    def test_rejects_bad_coordinates(self):
        grid = GeoGrid(2.0)
        with pytest.raises(ConfigurationError):
            grid.add(91.0, 0.0, "A")
        with pytest.raises(ConfigurationError):
            grid.add(0.0, 181.0, "A")

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ConfigurationError):
            GeoGrid(0)
