"""Array-backed catchment maps must be bit-equal to the dict reference.

Every public method is exercised against :class:`CatchmentMap` on the
same data — seeded random mappings, scan output, and hand-picked edge
cases — plus the columnar-only extras (``site_indices_of``, shared
universes, ``BlockValueMap``) and the columnar ``weight_catchment``
path, which must produce float-identical :class:`SiteLoad` results.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.anycast.catchment import (
    ArrayCatchmentMap,
    CatchmentMap,
    columnar_catchment,
)
from repro.collector.results import BlockValueMap
from repro.errors import BlockLookupError, ConfigurationError, DatasetError
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN, weight_catchment
from repro.traffic.logs import LoadKind

SITES = ["LAX", "MIA", "ARI"]


def random_mapping(seed: int, size: int, span: int = 5000) -> dict:
    rng = random.Random(seed)
    blocks = rng.sample(range(span), size)
    return {block: rng.choice(SITES) for block in blocks}


def pair_for(seed: int, size: int = 120):
    mapping = random_mapping(seed, size)
    return (
        CatchmentMap(SITES, mapping),
        ArrayCatchmentMap.from_mapping(SITES, mapping),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 7])
class TestMethodEquivalence:
    def test_len_contains_site_of(self, seed):
        reference, columnar = pair_for(seed)
        assert len(columnar) == len(reference)
        probes = list(reference.blocks())[:20] + [-1, 10**9, 2**64 + 5]
        for block in probes:
            assert (block in columnar) == (block in reference)
            assert columnar.site_of(block) == reference.site_of(block)

    def test_blocks_items_are_sorted_dict_contents(self, seed):
        reference, columnar = pair_for(seed)
        assert list(columnar.blocks()) == sorted(reference.blocks())
        assert dict(columnar.items()) == dict(reference.items())

    def test_blocks_of_site_counts_fractions(self, seed):
        reference, columnar = pair_for(seed)
        for code in (*SITES, "NOPE"):
            assert columnar.blocks_of_site(code) == sorted(
                reference.blocks_of_site(code)
            )
            assert columnar.fraction_of(code) == reference.fraction_of(code)
        assert columnar.counts() == reference.counts()
        assert columnar.fractions() == reference.fractions()

    def test_restrict_round_trip(self, seed):
        reference, columnar = pair_for(seed)
        rng = random.Random(seed + 1000)
        keep = rng.sample(sorted(reference.blocks()), len(reference) // 2)
        keep += [999_999_999]  # absent blocks are ignored by both
        restricted_ref = reference.restrict(keep)
        restricted_col = columnar.restrict(keep)
        assert dict(restricted_col.items()) == dict(restricted_ref.items())
        # The universe is shared, not copied, and a full restrict round-trips.
        assert restricted_col.universe is columnar.universe
        full = columnar.restrict(list(columnar.blocks()))
        assert dict(full.items()) == dict(columnar.items())

    def test_diff_matches_reference_exactly(self, seed):
        ref_a, col_a = pair_for(seed)
        later_mapping = random_mapping(seed + 500, 110)
        ref_b = CatchmentMap(SITES, later_mapping)
        col_b = ArrayCatchmentMap.from_mapping(SITES, later_mapping)
        expected = ref_a.diff(ref_b)
        for earlier, later in [
            (col_a, col_b),  # array/array (different universes)
            (col_a, ref_b),  # array/dict fallback
            (ref_a, col_b),  # dict/array via the lazy mapping
        ]:
            diff = earlier.diff(later)
            assert diff == expected
            assert diff.flipped_blocks == tuple(sorted(diff.flipped_blocks))

    def test_diff_on_shared_universe(self, seed):
        """The series case: same universe object, sites flip per round."""
        mapping = random_mapping(seed, 150)
        base = ArrayCatchmentMap.from_mapping(SITES, mapping)
        rng = random.Random(seed + 2000)
        sites = base.site_index_array.copy()
        for row in range(sites.size):
            roll = rng.random()
            if roll < 0.2:
                sites[row] = -1
            elif roll < 0.5:
                sites[row] = rng.randrange(len(SITES))
        later = ArrayCatchmentMap(SITES, base.universe, sites, validate=False)
        assert later.universe is base.universe
        expected = base.to_reference().diff(later.to_reference())
        assert base.diff(later) == expected


class TestConstructionAndValidation:
    def test_from_mapping_rejects_unknown_site(self):
        with pytest.raises(ConfigurationError):
            ArrayCatchmentMap.from_mapping(["LAX"], {1: "MIA"})

    def test_validate_rejects_malformed_arrays(self):
        with pytest.raises(ConfigurationError):
            ArrayCatchmentMap(SITES, np.array([1, 2]), np.array([0], dtype=np.int16))
        with pytest.raises(ConfigurationError):
            ArrayCatchmentMap(
                SITES,
                np.array([5, 3], dtype=np.uint64),
                np.array([0, 0], dtype=np.int16),
            )
        with pytest.raises(ConfigurationError):
            ArrayCatchmentMap(
                SITES,
                np.array([1, 2], dtype=np.uint64),
                np.array([0, len(SITES)], dtype=np.int16),
            )

    def test_empty_maps_agree(self):
        reference = CatchmentMap(SITES, {})
        columnar = ArrayCatchmentMap.from_mapping(SITES, {})
        assert len(columnar) == 0
        assert columnar.counts() == reference.counts()
        assert columnar.fractions() == reference.fractions()
        assert columnar.diff(columnar) == reference.diff(reference)
        assert columnar.site_of(3) is None

    def test_unmapped_universe_entries_are_invisible(self):
        universe = np.array([1, 2, 3, 4], dtype=np.uint64)
        sites = np.array([0, -1, 1, -1], dtype=np.int16)
        columnar = ArrayCatchmentMap(SITES, universe, sites)
        assert len(columnar) == 2
        assert 2 not in columnar
        assert columnar.site_of(2) is None
        assert list(columnar.blocks()) == [1, 3]
        assert columnar.mapped_block_array().tolist() == [1, 3]

    def test_convenience_wrapper(self):
        mapping = {10: "LAX", 20: "MIA"}
        columnar = columnar_catchment(SITES, mapping)
        assert dict(columnar.items()) == mapping

    def test_to_reference_round_trip(self):
        mapping = random_mapping(3, 80)
        columnar = ArrayCatchmentMap.from_mapping(SITES, mapping)
        reference = columnar.to_reference()
        assert isinstance(reference, CatchmentMap)
        assert not isinstance(reference, ArrayCatchmentMap)
        assert dict(reference.items()) == mapping


class TestSiteIndicesOf:
    def test_join_semantics(self):
        columnar = ArrayCatchmentMap(
            SITES,
            np.array([10, 20, 30], dtype=np.uint64),
            np.array([0, -1, 2], dtype=np.int16),
        )
        queries = np.array([5, 10, 20, 25, 30, 40], dtype=np.int64)
        indices = columnar.site_indices_of(queries)
        assert indices.dtype == np.int16
        assert indices.tolist() == [-1, 0, -1, -1, 2, -1]

    def test_empty_inputs(self):
        columnar = ArrayCatchmentMap.from_mapping(SITES, {})
        assert columnar.site_indices_of(np.array([1, 2])).tolist() == [-1, -1]
        full = ArrayCatchmentMap.from_mapping(SITES, {7: "LAX"})
        assert full.site_indices_of(np.array([], dtype=np.int64)).size == 0


class TestBlockValueMap:
    def test_mapping_protocol(self):
        bvm = BlockValueMap(
            np.array([3, 9, 12], dtype=np.int64),
            np.array([1.5, 2.5, 3.5]),
        )
        as_dict = {3: 1.5, 9: 2.5, 12: 3.5}
        assert dict(bvm.items()) == as_dict
        assert bvm == as_dict  # Mapping.__eq__
        assert len(bvm) == 3
        assert list(bvm) == [3, 9, 12]
        assert 9 in bvm and 4 not in bvm
        assert bvm[12] == 3.5
        assert bvm.get(4) is None
        assert np.int64(9) in bvm  # numpy integer keys behave like ints
        assert 9.0 in bvm and 9.5 not in bvm  # dict float-key semantics
        with pytest.raises(KeyError):
            bvm[4]
        with pytest.raises(BlockLookupError):
            bvm[4]

    def test_validation(self):
        with pytest.raises(DatasetError):
            BlockValueMap(np.array([2, 1]), np.array([0.0, 1.0]))
        with pytest.raises(DatasetError):
            BlockValueMap(np.array([1, 2]), np.array([0.0]))

    def test_empty(self):
        bvm = BlockValueMap(np.array([], dtype=np.int64), np.array([]))
        assert len(bvm) == 0
        assert not bvm  # Mapping truthiness via __len__
        assert 5 not in bvm


class TestWeightCatchmentEquivalence:
    @pytest.fixture(scope="class")
    def estimate(self, broot_tiny):
        return LoadEstimate(broot_tiny.day_load("2017-04-12"))

    @pytest.fixture(scope="class")
    def catchments(self, broot_scan):
        reference = broot_scan.catchment
        if isinstance(reference, ArrayCatchmentMap):
            reference = reference.to_reference()
        columnar = ArrayCatchmentMap.from_mapping(
            reference.site_codes, dict(reference.items())
        )
        return reference, columnar

    @pytest.mark.parametrize("kind", sorted(LoadKind.ALL))
    @pytest.mark.parametrize("hourly", [True, False])
    def test_bit_identical_site_load(self, catchments, broot_tiny, kind, hourly):
        reference_map, columnar_map = catchments
        estimate = LoadEstimate(broot_tiny.day_load("2017-04-12"), kind=kind)
        expected = weight_catchment(reference_map, estimate, hourly=hourly)
        actual = weight_catchment(columnar_map, estimate, hourly=hourly)
        for code in (*reference_map.site_codes, UNKNOWN):
            assert actual.daily_of(code) == expected.daily_of(code)
            assert np.array_equal(actual.hourly_of(code), expected.hourly_of(code))
        assert actual.fractions() == expected.fractions()
        assert actual.unknown_fraction() == expected.unknown_fraction()

    def test_fractions_match_fraction_of(self, catchments, estimate):
        _, columnar_map = catchments
        load = weight_catchment(columnar_map, estimate)
        for include_unknown in (False, True):
            shares = load.fractions(include_unknown=include_unknown)
            for code in load.site_codes:
                assert shares[code] == load.fraction_of(code, include_unknown)
            # The shares partition the normalising total: they must sum
            # to 1.0 whichever way the total was taken.
            assert sum(shares.values()) == pytest.approx(1.0)
            if include_unknown:
                assert UNKNOWN in shares
                assert shares[UNKNOWN] == load.unknown_fraction()
            else:
                assert UNKNOWN not in shares

    def test_hourly_of_returns_read_only_views(self, catchments, estimate):
        _, columnar_map = catchments
        load = weight_catchment(columnar_map, estimate)
        present = load.site_codes[0]
        for code in (present, UNKNOWN, "NO-SUCH-SITE"):
            vector = load.hourly_of(code)
            assert not vector.flags.writeable
            with pytest.raises(ValueError):
                vector[0] = 123.0
        # The refused write must not have leaked into internal state.
        assert np.array_equal(load.hourly_of(present), load.hourly_of(present))

    def test_hourly_matrix_matches_scalar_rows(self, broot_tiny):
        for kind in sorted(LoadKind.ALL):
            estimate = LoadEstimate(broot_tiny.day_load("2017-04-12"), kind=kind)
            matrix = estimate.hourly_matrix()
            for row, block in enumerate(estimate.blocks[:50]):
                assert np.array_equal(
                    matrix[row], estimate.hourly_of_block(int(block))
                )
