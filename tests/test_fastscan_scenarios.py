"""Vectorised-engine equivalence across scenarios (9-site, 20-site)."""

from __future__ import annotations

import math

import pytest

from repro.core.fastscan import FastScanEngine
from repro.core.scenarios import cdn_like
from repro.core.verfploeter import Verfploeter


@pytest.mark.parametrize("scenario_fixture", ["tangled_tiny"])
def test_tangled_equivalence(scenario_fixture, request):
    scenario = request.getfixturevalue(scenario_fixture)
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    routing = verfploeter.routing_for()
    engine = FastScanEngine(verfploeter, routing)
    for round_id in (0, 4):
        scalar = verfploeter.run_scan(
            routing=routing, round_id=round_id, wire_level=False
        )
        fast = engine.run_scan(round_id=round_id)
        assert dict(fast.catchment.items()) == dict(scalar.catchment.items())
        assert fast.stats == scalar.stats
        for block, rtt in scalar.rtts.items():
            assert math.isclose(fast.rtts[block], rtt, rel_tol=1e-9)


def test_cdn_equivalence():
    scenario = cdn_like(scale="tiny", seed=4242)
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    routing = verfploeter.routing_for()
    engine = FastScanEngine(verfploeter, routing)
    scalar = verfploeter.run_scan(routing=routing, round_id=3, wire_level=False)
    fast = engine.run_scan(round_id=3)
    assert dict(fast.catchment.items()) == dict(scalar.catchment.items())
    assert fast.stats == scalar.stats


def test_withdrawn_site_policy_equivalence(broot_tiny):
    """The engine honours non-default policies (site withdrawal)."""
    verfploeter = Verfploeter(broot_tiny.internet, broot_tiny.service)
    policy = broot_tiny.service.policy(withdrawn=["MIA"])
    routing = verfploeter.routing_for(policy)
    engine = FastScanEngine(verfploeter, routing)
    scalar = verfploeter.run_scan(routing=routing, round_id=1, wire_level=False)
    fast = engine.run_scan(round_id=1)
    assert dict(fast.catchment.items()) == dict(scalar.catchment.items())
    assert set(fast.catchment.fractions()) == {"LAX"}
