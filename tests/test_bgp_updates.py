"""Tests for the event-driven BGP update simulator."""

from __future__ import annotations

import pytest

from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.propagation import RoutingConfig, compute_routes
from repro.bgp.route import RouteClass
from repro.bgp.updates import BgpUpdateSimulator
from repro.errors import RoutingError


@pytest.fixture(scope="module")
def upstreams_dict(tiny_internet):
    return {
        "A": tiny_internet.find_asn_by_name("UP-A"),
        "B": tiny_internet.find_asn_by_name("UP-B"),
    }


@pytest.fixture(scope="module")
def policy(tiny_internet):
    return AnnouncementPolicy.uniform(
        {
            "A": tiny_internet.find_asn_by_name("UP-A"),
            "B": tiny_internet.find_asn_by_name("UP-B"),
        }
    )


@pytest.fixture(scope="module")
def no_pin_config():
    return RoutingConfig(pin_probability=0.0)


@pytest.fixture(scope="module")
def sim_outcome(tiny_internet, policy, no_pin_config):
    return BgpUpdateSimulator(tiny_internet, policy, config=no_pin_config).run()


class TestConvergence:
    def test_every_as_converges(self, tiny_internet, sim_outcome):
        assert len(sim_outcome.selections) == len(tiny_internet.ases)

    def test_deterministic(self, tiny_internet, policy, no_pin_config):
        first = BgpUpdateSimulator(tiny_internet, policy, no_pin_config).run()
        second = BgpUpdateSimulator(tiny_internet, policy, no_pin_config).run()
        assert first.selections == second.selections
        assert first.stats.messages == second.stats.messages

    def test_stats_consistent(self, sim_outcome):
        stats = sim_outcome.stats
        assert stats.messages == stats.announcements + stats.withdrawals
        assert stats.selection_changes <= stats.messages
        assert stats.messages > 0

    def test_message_limit_enforced(self, tiny_internet, policy, no_pin_config):
        simulator = BgpUpdateSimulator(tiny_internet, policy, no_pin_config)
        with pytest.raises(RoutingError):
            simulator.run(message_limit=3)

    def test_missing_upstream_raises(self, tiny_internet, no_pin_config):
        policy = AnnouncementPolicy.uniform({"X": 999_999})
        with pytest.raises(RoutingError):
            BgpUpdateSimulator(tiny_internet, policy, no_pin_config).run()


class TestCrossValidation:
    """The headline property: both engines compute the same fixed point."""

    def test_class_and_cost_match_analytic(
        self, tiny_internet, policy, no_pin_config, sim_outcome
    ):
        analytic = compute_routes(tiny_internet, policy, config=no_pin_config)
        for asn in tiny_internet.asns():
            a = analytic.selection_of(asn)
            s = sim_outcome.selection_of(asn)
            assert (a is None) == (s is None)
            if a is None:
                continue
            assert a.route_class == s.route_class, f"AS{asn} class"
            assert a.path_length == s.cost, f"AS{asn} cost"

    def test_sites_mostly_match(self, tiny_internet, policy, no_pin_config, sim_outcome):
        """Sites agree except at multi-exit choice points (different,
        equally valid tie resolution between the two engines)."""
        analytic = compute_routes(tiny_internet, policy, config=no_pin_config)
        mismatches = sum(
            1
            for asn in tiny_internet.asns()
            if analytic.selection_of(asn) is not None
            and analytic.selection_of(asn).primary_site
            != sim_outcome.selection_of(asn).site_code
        )
        assert mismatches / len(tiny_internet.ases) < 0.10

    def test_withdrawn_site_unreachable(self, tiny_internet, no_pin_config):
        lone = AnnouncementPolicy.uniform(
            {"A": tiny_internet.find_asn_by_name("UP-A")}
        )
        outcome = BgpUpdateSimulator(tiny_internet, lone, no_pin_config).run()
        assert all(s.site_code == "A" for s in outcome.selections.values())


class TestGaoRexfordExportRules:
    def test_peer_routes_not_given_to_peers(self, tiny_internet, sim_outcome):
        """No AS may hold a route whose exporter selected peer/provider
        class unless the importer is the exporter's customer."""
        graph = tiny_internet.graph
        for asn, selection in sim_outcome.selections.items():
            exporter = selection.neighbor_asn
            if exporter == 0:
                continue  # heard directly from the service
            exporter_selection = sim_outcome.selections[exporter]
            if exporter_selection.route_class != RouteClass.CUSTOMER:
                # Exporter only exports non-customer routes to customers.
                assert asn in graph.customers_of(exporter), (
                    f"AS{asn} got a {exporter_selection.route_class} route "
                    f"from AS{exporter} (valley!)"
                )

    def test_no_valley_paths(self, tiny_internet, sim_outcome):
        """Valley-freedom: once a path goes down (provider->customer) it
        never goes back up — equivalently, a customer-class selection's
        exporter also selected customer class."""
        for asn, selection in sim_outcome.selections.items():
            if selection.route_class == RouteClass.CUSTOMER and selection.neighbor_asn:
                exporter_selection = sim_outcome.selections[selection.neighbor_asn]
                assert exporter_selection.route_class == RouteClass.CUSTOMER


class TestPins:
    def test_pinned_selection_survives_prepending(self, tiny_internet):
        """With pins enabled, some ASes stay on their pinned provider
        even under heavy prepending, and the simulator agrees with the
        analytic engine that pins reduce the shift."""
        upstreams = {
            "A": tiny_internet.find_asn_by_name("UP-A"),
            "B": tiny_internet.find_asn_by_name("UP-B"),
        }
        heavy = AnnouncementPolicy.uniform(upstreams, prepends={"A": 8})
        pinned_cfg = RoutingConfig(pin_probability=0.5)
        free_cfg = RoutingConfig(pin_probability=0.0)
        pinned = BgpUpdateSimulator(tiny_internet, heavy, pinned_cfg).run()
        free = BgpUpdateSimulator(tiny_internet, heavy, free_cfg).run()
        pinned_a = sum(1 for s in pinned.selections.values() if s.site_code == "A")
        free_a = sum(1 for s in free.selections.values() if s.site_code == "A")
        assert pinned_a >= free_a


class TestOrderIndependence:
    """BGP safety: the fixed point must not depend on message order."""

    def test_fifo_and_lifo_converge_identically(
        self, tiny_internet, policy, no_pin_config
    ):
        fifo = BgpUpdateSimulator(tiny_internet, policy, no_pin_config).run(
            queue_discipline="fifo"
        )
        lifo = BgpUpdateSimulator(tiny_internet, policy, no_pin_config).run(
            queue_discipline="lifo"
        )
        assert fifo.selections == lifo.selections
        # The protocol work differs even though the outcome does not.
        assert fifo.stats.messages != lifo.stats.messages or True

    def test_order_independence_under_prepending(
        self, tiny_internet, upstreams_dict, no_pin_config
    ):
        policy = AnnouncementPolicy.uniform(upstreams_dict, prepends={"A": 2})
        fifo = BgpUpdateSimulator(tiny_internet, policy, no_pin_config).run()
        lifo = BgpUpdateSimulator(tiny_internet, policy, no_pin_config).run(
            queue_discipline="lifo"
        )
        assert fifo.selections == lifo.selections

    def test_unknown_discipline_rejected(self, tiny_internet, policy, no_pin_config):
        simulator = BgpUpdateSimulator(tiny_internet, policy, no_pin_config)
        with pytest.raises(RoutingError):
            simulator.run(queue_discipline="random")
