"""Sharded scan / weighting: merge equivalence, pickling, memmap tables."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.anycast.catchment import ArrayCatchmentMap
from repro.core.fastscan import FastScanEngine, _VectorPermutation
from repro.core.scenarios import tangled_like
from repro.core.sharding import (
    ShardPlan,
    assert_buffers_equal,
    assert_scan_results_identical,
    assert_site_loads_identical,
    run_sharded_series,
    sharded_weight_catchment,
)
from repro.core.tables import (
    TableStore,
    attach_scenario_tables,
    attached_day_load,
    persist_scenario_tables,
)
from repro.core.verfploeter import Verfploeter
from repro.errors import ConfigurationError, DatasetError, EquivalenceError
from repro.load.estimator import LoadEstimate
from repro.load.weighting import weight_catchment


def _engine_for(seed: int) -> FastScanEngine:
    scenario = tangled_like(scale="tiny", seed=seed)
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    return FastScanEngine(verfploeter)


class TestShardPlan:
    def test_split_tiles_universe(self):
        plan = ShardPlan.split(10, 3)
        assert plan.bounds == ((0, 4), (4, 7), (7, 10))
        assert plan.sizes() == [4, 3, 3]
        assert plan.shard_count == 3

    def test_split_clamps_to_universe(self):
        plan = ShardPlan.split(2, 7)
        assert plan.shard_count == 2
        assert plan.sizes() == [1, 1]

    def test_split_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            ShardPlan.split(0, 1)
        with pytest.raises(ConfigurationError):
            ShardPlan.split(10, 0)

    def test_bounds_must_tile(self):
        with pytest.raises(ConfigurationError):
            ShardPlan(universe_size=10, bounds=((0, 4), (5, 10)))
        with pytest.raises(ConfigurationError):
            ShardPlan(universe_size=10, bounds=((0, 4), (4, 9)))

    def test_imbalance(self):
        assert ShardPlan.split(12, 4).imbalance() == 1.0
        assert ShardPlan.split(10, 3).imbalance() == pytest.approx(1.2)


class TestAssertHelpers:
    def test_buffers_equal_passes_and_fails(self):
        a = np.arange(5, dtype=np.int64)
        assert_buffers_equal(a, a.copy())
        with pytest.raises(EquivalenceError, match="dtype"):
            assert_buffers_equal(a, a.astype(np.int32))
        with pytest.raises(EquivalenceError, match="shape"):
            assert_buffers_equal(a, a[:3])
        b = a.copy()
        b[2] = 99
        with pytest.raises(EquivalenceError, match="element index 2"):
            assert_buffers_equal(a, b)

    def test_nan_payloads_compare_bitwise(self):
        # allclose-style comparison would treat NaN != NaN; byte
        # comparison treats identical NaNs as equal, which is the
        # bit-identity contract.
        a = np.array([1.0, np.nan])
        assert_buffers_equal(a, a.copy())


class TestShardedSeriesEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 123])
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_bit_identical_to_single_process(self, seed, shards):
        engine = _engine_for(seed)
        baseline = engine.run_series(rounds=3, interval_seconds=900.0)
        sharded = run_sharded_series(
            engine, rounds=3, shards=shards, workers=0
        )
        assert len(sharded) == len(baseline)
        for merged, expected in zip(sharded, baseline):
            assert_scan_results_identical(merged, expected)

    def test_boundary_splits_a_site_catchment(self, tmp_path):
        # The interesting shard boundary is one that cuts through a
        # site's catchment: blocks of the same site land in different
        # shards and must reassemble exactly.
        engine = _engine_for(3)
        baseline = engine.run_series(rounds=1, interval_seconds=900.0)[0]
        sites = baseline.catchment.site_index_array
        boundary = None
        for cut in range(1, sites.size):
            if sites[cut - 1] == sites[cut]:
                boundary = cut
                break
        assert boundary is not None, "no site spans any candidate boundary"
        plan = ShardPlan(
            universe_size=sites.size,
            bounds=((0, boundary), (boundary, sites.size)),
        )
        state = engine.state
        from repro.core.sharding import _merge_round, _scan_shard_worker

        store = TableStore(root=str(tmp_path))
        fingerprint = engine.externalize(store)
        shard_rounds = [
            _scan_shard_worker((store.root, fingerprint, start, stop, 1))[0]
            for start, stop in plan.bounds
        ]
        merged = _merge_round(
            state, shard_rounds, plan.bounds, 0, 900.0, "fast-series"
        )
        assert_scan_results_identical(merged, baseline)

    def test_process_pool_matches_inline(self):
        engine = _engine_for(17)
        inline = run_sharded_series(engine, rounds=2, shards=2, workers=0)
        pooled = run_sharded_series(engine, rounds=2, shards=2, workers=2)
        for a, b in zip(pooled, inline):
            assert_scan_results_identical(a, b)

    def test_rejects_bad_rounds(self):
        engine = _engine_for(3)
        with pytest.raises(ConfigurationError):
            run_sharded_series(engine, rounds=0, shards=2, workers=0)


class TestShardedWeighting:
    @pytest.mark.parametrize("shards,workers", [(1, 0), (4, 0), (3, 2)])
    def test_bit_identical_to_weight_catchment(self, shards, workers):
        scenario = tangled_like(scale="tiny", seed=3)
        verfploeter = Verfploeter(scenario.internet, scenario.service)
        engine = FastScanEngine(verfploeter)
        scan = engine.run_scan(round_id=0)
        estimate = LoadEstimate(scenario.day_load("shard-day"))
        expected = weight_catchment(scan.catchment, estimate)
        actual = sharded_weight_catchment(
            scan.catchment, estimate, shards=shards, workers=workers
        )
        assert_site_loads_identical(actual, expected)

    def test_requires_array_catchment(self):
        scenario = tangled_like(scale="tiny", seed=3)
        estimate = LoadEstimate(scenario.day_load("shard-day"))
        with pytest.raises(ConfigurationError):
            sharded_weight_catchment({"LAX": [1]}, estimate, workers=0)


class TestPickling:
    def test_catchment_drops_lazy_caches(self):
        engine = _engine_for(3)
        scan = engine.run_scan(round_id=0)
        catchment = scan.catchment
        catchment.counts()  # populate the lazy dict caches
        clone = pickle.loads(pickle.dumps(catchment))
        assert clone._mapping_cache is None
        assert clone._mapped_count is None
        assert_buffers_equal(clone.universe, catchment.universe)
        assert_buffers_equal(clone.site_index_array, catchment.site_index_array)
        assert clone.counts() == catchment.counts()

    def test_worker_payload_is_tiny(self, tmp_path):
        # The zero-copy contract: a scan-shard payload is (store root,
        # fingerprint, bounds, rounds) — a few hundred bytes no matter
        # how many blocks the universe holds.
        engine = _engine_for(3)
        store = TableStore(root=str(tmp_path))
        fingerprint = engine.externalize(store)
        payload = (store.root, fingerprint, 0, engine.state.rows, 96)
        assert len(pickle.dumps(payload)) < 4096

    def test_worker_never_receives_a_universe_array(self, tmp_path):
        # Regression for the pre-pool protocol, which shipped the full
        # RoundState (block/site/geo columns) to every worker: nothing
        # in a payload may be an ndarray at all, let alone one the size
        # of the block universe.
        engine = _engine_for(3)
        store = TableStore(root=str(tmp_path))
        fingerprint = engine.externalize(store)
        plan = ShardPlan.split(engine.state.rows, 3)
        payloads = [
            (store.root, fingerprint, start, stop, 4)
            for start, stop in plan.bounds
        ]

        def flatten(value):
            if isinstance(value, (tuple, list)):
                for item in value:
                    yield from flatten(item)
            elif isinstance(value, dict):
                for item in value.values():
                    yield from flatten(item)
            else:
                yield value

        for payload in payloads:
            for leaf in flatten(pickle.loads(pickle.dumps(payload))):
                assert not isinstance(leaf, np.ndarray)
                assert isinstance(leaf, (str, int, float))

    def test_scan_result_roundtrips_bitwise(self):
        engine = _engine_for(3)
        scan = engine.run_scan(round_id=1)
        clone = pickle.loads(pickle.dumps(scan))
        assert_scan_results_identical(clone, scan)


class TestVectorPermutationInverse:
    @pytest.mark.parametrize("n,seed", [(5, 1), (16, 9), (1000, 42), (12345, 7)])
    def test_positions_of_inverts_permutation(self, n, seed):
        perm = _VectorPermutation(n, seed)
        forward = perm.permutation()
        positions = perm.positions_of(np.arange(n, dtype=np.int64))
        # forward[i] is the block probed at slot i, so the position of
        # block b is the slot where forward == b.
        expected = np.empty(n, dtype=np.int64)
        expected[forward] = np.arange(n, dtype=np.int64)
        assert_buffers_equal(positions, expected)

    def test_positions_of_rejects_out_of_range(self):
        perm = _VectorPermutation(10, 1)
        with pytest.raises(ConfigurationError):
            perm.positions_of(np.array([10]))


class TestTableStore:
    def test_persist_then_attach_is_bit_identical(self, tmp_path):
        store = TableStore(root=str(tmp_path))
        built = tangled_like(scale="tiny", seed=3)
        day = built.day_load("table-day")
        fingerprint = persist_scenario_tables(store, built, day_loads=[day])
        assert store.has(fingerprint)

        fresh = tangled_like(scale="tiny", seed=3)
        manifest = attach_scenario_tables(store, fresh)
        assert manifest["blocks"] == len(fresh.internet)
        for attached, rebuilt in zip(
            fresh.internet.block_table(), built.internet.block_table()
        ):
            assert_buffers_equal(attached, rebuilt)
        attached_cols = fresh.internet.geodb.columnar()
        rebuilt_cols = built.internet.geodb.columnar()
        assert attached_cols.countries == rebuilt_cols.countries
        assert_buffers_equal(attached_cols.blocks, rebuilt_cols.blocks)

        restored = attached_day_load(store, fresh, day.service_name, day.date_label)
        assert_buffers_equal(restored.blocks, day.blocks)
        assert_buffers_equal(restored.queries, day.queries)
        assert restored.row_of(int(day.blocks[0])) == 0

    def test_attached_scenario_scans_identically(self, tmp_path):
        store = TableStore(root=str(tmp_path))
        built = tangled_like(scale="tiny", seed=3)
        persist_scenario_tables(store, built)
        fresh = tangled_like(scale="tiny", seed=3)
        attach_scenario_tables(store, fresh)
        baseline = FastScanEngine(
            Verfploeter(built.internet, built.service)
        ).run_scan(round_id=0)
        attached = FastScanEngine(
            Verfploeter(fresh.internet, fresh.service)
        ).run_scan(round_id=0)
        assert_scan_results_identical(attached, baseline)

    def test_missing_tables_raise(self, tmp_path):
        store = TableStore(root=str(tmp_path))
        scenario = tangled_like(scale="tiny", seed=3)
        with pytest.raises(DatasetError):
            attach_scenario_tables(store, scenario)
        persist_scenario_tables(store, scenario)
        with pytest.raises(DatasetError):
            attached_day_load(store, scenario, "nope", "never")


class TestAttachValidation:
    def test_block_table_shape_checked(self):
        from repro.errors import TopologyError

        scenario = tangled_like(scale="tiny", seed=3)
        short = np.zeros(3, dtype=np.int64)
        with pytest.raises(TopologyError):
            scenario.internet.attach_block_table(short, short, short)

    def test_geo_columns_shape_checked(self):
        from repro.geo.geodb import GeoColumns

        scenario = tangled_like(scale="tiny", seed=3)
        bad = GeoColumns(
            blocks=np.zeros(1, dtype=np.int64),
            latitudes=np.zeros(1),
            longitudes=np.zeros(1),
            country_index=np.zeros(1, dtype=np.int64),
            countries=("US",),
        )
        with pytest.raises(DatasetError):
            scenario.internet.geodb.attach_columns(bad)
