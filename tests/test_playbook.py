"""Tests for the DDoS playbook planner and volumetric attack workloads."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bgp.cache import RoutingCache, policy_digest
from repro.core.playbook import (
    ConfigOutcome,
    PlaybookEntry,
    PlaybookPlanner,
    derive_capacities,
    enumerate_lattice,
)
from repro.core.scenarios import tangled_like
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN, capacity_violations, weight_catchment
from repro.traffic.attack import (
    AttackProfile,
    attack_day_load,
    compose_attack,
    hotspot_blocks,
)
from repro.traffic.logs import HOURS


@pytest.fixture(scope="module")
def tangled_vp(tangled_tiny):
    return Verfploeter(tangled_tiny.internet, tangled_tiny.service)


@pytest.fixture(scope="module")
def baseline_catchment(tangled_vp):
    planner = PlaybookPlanner(tangled_vp, cache=RoutingCache())
    return planner.catchment_for(tangled_vp.service.default_policy())


@pytest.fixture(scope="module")
def day(tangled_tiny):
    return tangled_tiny.day_load("playbook-test-day")


@pytest.fixture(scope="module")
def attacked_site(baseline_catchment, day):
    """The heaviest-loaded site — the CLI's default target."""
    load = weight_catchment(baseline_catchment, LoadEstimate(day))
    return max(sorted(load.peaks()), key=load.daily_of)


class TestAttackComposition:
    def test_profile_validation(self):
        with pytest.raises(Exception):
            AttackProfile(target_site="X", intensity=0.0)
        with pytest.raises(Exception):
            AttackProfile(target_site="X", hotspot_fraction=0.0)
        with pytest.raises(Exception):
            AttackProfile(target_site="X", start_hour=24)
        with pytest.raises(Exception):
            AttackProfile(target_site="X", duration_hours=0)

    def test_window_wraps_midnight(self):
        profile = AttackProfile(
            target_site="X", start_hour=22, duration_hours=4
        )
        assert profile.window_hours() == (22, 23, 0, 1)

    def test_hotspot_is_deterministic_subset(
        self, baseline_catchment, attacked_site
    ):
        first = hotspot_blocks(baseline_catchment, attacked_site, 0.5, seed=11)
        second = hotspot_blocks(baseline_catchment, attacked_site, 0.5, seed=11)
        assert first == second
        members = set(baseline_catchment.blocks_of_site(attacked_site))
        assert set(first) <= members
        assert first  # non-empty on a mapped site

    def test_hotspot_fraction_one_is_whole_catchment(
        self, baseline_catchment, attacked_site
    ):
        everyone = hotspot_blocks(
            baseline_catchment, attacked_site, 1.0, seed=11
        )
        assert everyone == sorted(
            baseline_catchment.blocks_of_site(attacked_site)
        )

    def test_attack_volume_scales_with_peak_rate(self, day):
        profile = AttackProfile(
            target_site="X", intensity=2.0, duration_hours=4
        )
        attackers = [int(day.blocks[0]), int(day.blocks[1])]
        attacked = attack_day_load(day, attackers, profile, seed=11)
        peak_rate = float(day.hourly_totals().max())
        expected_extra = 2.0 * peak_rate * 4
        assert attacked.total_queries() == pytest.approx(
            day.total_queries() + expected_extra
        )

    def test_baseline_hours_preserved_outside_window(self, day):
        profile = AttackProfile(
            target_site="X", start_hour=12, duration_hours=4
        )
        attackers = [int(day.blocks[0])]
        attacked = attack_day_load(day, attackers, profile, seed=11)
        rows = np.searchsorted(attacked.blocks, day.blocks)
        outside = [h for h in range(HOURS) if h not in profile.window_hours()]
        assert np.array_equal(
            attacked.queries[np.ix_(rows, outside)],
            day.queries[:, outside],
        )

    def test_attacker_only_blocks_send_junk(self, day):
        new_block = int(day.blocks[-1]) + 7
        profile = AttackProfile(target_site="X")
        attacked = attack_day_load(day, [new_block], profile, seed=11)
        row = attacked.row_of(new_block)
        assert row is not None
        assert attacked.good_fraction[row] == 0.0
        assert attacked.reply_fraction[row] == 1.0
        # strictly ascending union universe (the DayLoad contract)
        assert np.all(np.diff(attacked.blocks) > 0)

    def test_compose_attack_round_trip(
        self, day, baseline_catchment, attacked_site
    ):
        profile = AttackProfile(target_site=attacked_site)
        attacked, attackers = compose_attack(
            day, baseline_catchment, profile, seed=11
        )
        assert attackers == hotspot_blocks(
            baseline_catchment, attacked_site, profile.hotspot_fraction, 11
        )
        assert attacked.total_queries() > day.total_queries()


class TestCapacitySemantics:
    """The pinned, repo-wide capacity definition (peak hourly, strict >)."""

    def test_peak_is_max_hourly(self, baseline_catchment, day):
        load = weight_catchment(baseline_catchment, LoadEstimate(day))
        for code in load.site_codes:
            assert load.peak_of(code) == pytest.approx(
                float(load.hourly_of(code).max())
            )

    def test_exactly_at_capacity_is_not_a_violation(self):
        peaks = {"AAA": 100.0, "BBB": 100.0}
        assert capacity_violations(peaks, {"AAA": 100.0, "BBB": 100.0}) == []
        just_over = {"AAA": 100.0000001, "BBB": 100.0}
        assert capacity_violations(
            just_over, {"AAA": 100.0, "BBB": 100.0}
        ) == ["AAA"]

    def test_excluded_and_unknown_never_violate(self):
        peaks = {"AAA": 500.0, UNKNOWN: 999.0}
        capacities = {"AAA": 1.0, UNKNOWN: 1.0}
        assert capacity_violations(peaks, capacities, exclude=("AAA",)) == []

    def test_peak_not_mean_is_compared(self):
        """A site fine on average but melting at peak IS in violation."""
        peaks = {"AAA": 240.0}  # daily 240 spread over one hour
        capacities = {"AAA": 100.0}  # mean would be 10/h: comfortably under
        assert capacity_violations(peaks, capacities) == ["AAA"]

    def test_site_failure_study_shares_the_definition(
        self, broot_verfploeter, broot_tiny
    ):
        from repro.core.experiments import site_failure_study

        estimate = LoadEstimate(broot_tiny.day_load("failure-day"))
        results = site_failure_study(broot_verfploeter, estimate)
        for result in results:
            assert set(result.peak_after) == set(
                broot_tiny.service.site_codes
            )
            # withdrawn site never violates, even with zero capacity
            zero_caps = {code: 0.0 for code in result.peak_after}
            assert result.withdrawn_site not in result.overloaded_sites(
                zero_caps
            )
            # identical semantics to the shared helper the planner uses
            caps = {code: 1.0 for code in result.peak_after}
            assert result.overloaded_sites(caps) == capacity_violations(
                result.peak_after, caps, exclude=(result.withdrawn_site,)
            )


class TestLattice:
    def test_depth_one_count_and_order(self, tangled_vp):
        entries = enumerate_lattice(
            tangled_vp.service, "MIA", max_prepend=3, depth=1
        )
        labels = [entry.label for entry in entries]
        assert labels == ["equal", "MIA+1", "MIA+2", "MIA+3", "-MIA"]

    def test_depth_two_count(self, tangled_vp):
        sites = len(tangled_vp.service.site_codes)
        max_prepend = 2
        entries = enumerate_lattice(
            tangled_vp.service, "MIA", max_prepend=max_prepend, depth=2
        )
        depth1 = 1 + max_prepend + 1
        depth2 = (max_prepend + 1) * (sites - 1) * max_prepend
        assert len(entries) == depth1 + depth2

    def test_config_ids_are_unique_policy_digests(self, tangled_vp):
        entries = enumerate_lattice(
            tangled_vp.service, "MIA", max_prepend=2, depth=2
        )
        ids = [entry.config_id for entry in entries]
        assert len(set(ids)) == len(ids)
        for entry in entries[:5]:
            assert entry.config_id == policy_digest(
                entry.policy_for(tangled_vp.service)
            )

    def test_rejects_bad_inputs(self, tangled_vp):
        with pytest.raises(Exception):
            enumerate_lattice(tangled_vp.service, "NOPE")
        with pytest.raises(Exception):
            enumerate_lattice(tangled_vp.service, "MIA", max_prepend=0)
        with pytest.raises(Exception):
            enumerate_lattice(tangled_vp.service, "MIA", depth=3)


def _plan_artifact(seed: int, parallel: int = 1) -> str:
    """One complete cold search at tiny scale, rendered to canonical JSON."""
    scenario = tangled_like(scale="tiny", seed=seed)
    vp = Verfploeter(scenario.internet, scenario.service)
    planner = PlaybookPlanner(vp, cache=RoutingCache(maxsize=256))
    catchment = planner.catchment_for(scenario.service.default_policy())
    day = scenario.day_load("pb-day")
    load = weight_catchment(catchment, LoadEstimate(day))
    attacked = max(sorted(load.peaks()), key=load.daily_of)
    profile = AttackProfile(target_site=attacked)
    attack_day, attackers = compose_attack(
        day, catchment, profile, scenario.internet.seed
    )
    playbook = planner.plan(
        LoadEstimate(attack_day),
        attacked,
        derive_capacities(load, scenario.service.site_codes),
        max_prepend=2,
        depth=1,
        parallel=parallel,
        attack=profile,
        attacker_count=len(attackers),
    )
    return playbook.to_json()


class TestPlannerDeterminism:
    @pytest.mark.parametrize("seed", [3, 17, 123])
    def test_same_seed_same_bytes(self, seed):
        assert _plan_artifact(seed) == _plan_artifact(seed)

    def test_parallel_equals_serial_bytes(self):
        assert _plan_artifact(3, parallel=1) == _plan_artifact(3, parallel=4)

    def test_different_seeds_differ(self):
        assert _plan_artifact(3) != _plan_artifact(17)

    def test_tied_scores_break_on_config_id(self):
        def outcome(config_id: str) -> ConfigOutcome:
            entry = PlaybookEntry(
                label=config_id, config_id=config_id,
                prepends=(), withdrawn=(),
            )
            return ConfigOutcome(
                entry=entry, daily={}, peaks={}, utilization={},
                violations=("AAA",), worst_utilization=2.5,
            )

        shuffled = [outcome("cc"), outcome("aa"), outcome("bb")]
        ranked = sorted(shuffled, key=ConfigOutcome.sort_key)
        assert [o.entry.config_id for o in ranked] == ["aa", "bb", "cc"]

    def test_ranking_is_total_and_minimal_first(self, tangled_vp, day):
        planner = PlaybookPlanner(tangled_vp, cache=RoutingCache(maxsize=256))
        catchment = planner.catchment_for(
            tangled_vp.service.default_policy()
        )
        load = weight_catchment(catchment, LoadEstimate(day))
        attacked = max(sorted(load.peaks()), key=load.daily_of)
        profile = AttackProfile(target_site=attacked)
        attack_day, attackers = compose_attack(
            day, catchment, profile, seed=11
        )
        playbook = planner.plan(
            LoadEstimate(attack_day),
            attacked,
            derive_capacities(load, tangled_vp.service.site_codes),
            max_prepend=2,
            depth=1,
        )
        keys = [outcome.sort_key() for outcome in playbook.ranked]
        assert keys == sorted(keys)
        assert playbook.top.sort_key() == min(keys)
        # the do-nothing baseline is the first enumerated entry
        assert playbook.baseline.entry.label == "equal"
        # a second search on the same planner is served from the memo:
        # no new propagations, byte-identical artifact
        before = (
            planner.cache.stats.full_computes,
            planner.cache.stats.delta_computes,
        )
        again = planner.plan(
            LoadEstimate(attack_day),
            attacked,
            derive_capacities(load, tangled_vp.service.site_codes),
            max_prepend=2,
            depth=1,
        )
        after = (
            planner.cache.stats.full_computes,
            planner.cache.stats.delta_computes,
        )
        assert before == after
        assert again.to_json() == playbook.to_json()


class TestCliRoundTrip:
    ARGS = [
        "playbook", "--scenario", "tangled", "--scale", "tiny",
        "--seed", "11", "--max-prepend", "2", "--depth", "1",
    ]

    def test_artifact_round_trip_and_schema(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "playbook.json"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "recommended config:" in printed
        artifact = json.loads(out.read_text())
        assert artifact["version"] == 1
        assert artifact["configs_evaluated"] == len(artifact["ranked"])
        assert [row["rank"] for row in artifact["ranked"]] == list(
            range(1, len(artifact["ranked"]) + 1)
        )
        top = artifact["ranked"][0]
        assert top["config_id"] == artifact["recommendation"]["config_id"]
        assert artifact["attack"]["attacker_blocks"] > 0
        assert set(artifact["before"]) == {
            "daily", "peaks", "utilization", "violations",
            "worst_utilization",
        }
        assert artifact["meta"]["scenario"] == "tangled"
        assert artifact["meta"]["seed"] == 11

    def test_two_runs_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(self.ARGS + ["--out", str(first)]) == 0
        assert main(
            self.ARGS + ["--parallel", "3", "--out", str(second)]
        ) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_workers_zero_matches_in_process(self, tmp_path, capsys):
        from repro.cli import main

        plain = tmp_path / "plain.json"
        sharded = tmp_path / "sharded.json"
        assert main(self.ARGS + ["--out", str(plain)]) == 0
        assert main(
            self.ARGS + ["--workers", "0", "--out", str(sharded)]
        ) == 0
        capsys.readouterr()
        assert plain.read_bytes() == sharded.read_bytes()
