"""Tests tying the workload's good-reply fractions to the DNS substrate."""

from __future__ import annotations

import pytest

from repro.dns.message import CLASS_IN, TYPE_A, DnsMessage
from repro.dns.root import RootServer, build_root_zone
from repro.errors import ConfigurationError
from repro.traffic.names import QueryNameSampler


@pytest.fixture(scope="module")
def zone():
    return build_root_zone()


@pytest.fixture(scope="module")
def sampler(zone):
    return QueryNameSampler(zone, seed=77)


@pytest.fixture(scope="module")
def server(zone):
    return RootServer("LAX", "b.root-servers.net", zone)


class TestSampler:
    def test_deterministic(self, sampler):
        assert sampler.sample_many(5, 20, 0.5) == sampler.sample_many(5, 20, 0.5)

    def test_extremes(self, sampler, server):
        all_good = sampler.sample_many(1, 50, 1.0)
        all_junk = sampler.sample_many(1, 50, 0.0)
        for name in all_good:
            assert server.is_good_reply(DnsMessage.query(1, name, TYPE_A, CLASS_IN))
        for name in all_junk:
            assert not server.is_good_reply(
                DnsMessage.query(1, name, TYPE_A, CLASS_IN)
            )

    def test_served_ratio_matches_configuration(self, sampler, server):
        """Feeding sampled names through the real root server recovers
        the configured good fraction (the paper's §3.2 load split)."""
        target = 0.6
        names = sampler.sample_many(42, 400, target)
        good = sum(
            server.is_good_reply(DnsMessage.query(1, name, TYPE_A, CLASS_IN))
            for name in names
        )
        assert good / len(names) == pytest.approx(target, abs=0.08)

    def test_names_vary_by_block(self, sampler):
        assert sampler.sample_many(1, 10, 0.5) != sampler.sample_many(2, 10, 0.5)

    def test_empty_zone_rejected(self):
        from repro.dns.message import DnsRecord
        from repro.dns.zone import Zone

        bare = Zone("", DnsRecord.soa("", "a.example", "h.example", 1))
        with pytest.raises(ConfigurationError):
            QueryNameSampler(bare, seed=1)


class TestEndToEndQueryPath:
    def test_wire_roundtrip_through_root(self, sampler, server):
        """Sampled name -> encoded query -> server -> encoded response."""
        for index, name in enumerate(sampler.sample_many(9, 10, 0.5)):
            query = DnsMessage.query(index, name, TYPE_A, CLASS_IN)
            response = server.handle(DnsMessage.decode(query.encode()))
            decoded = DnsMessage.decode(response.encode())
            assert decoded.message_id == index
            assert decoded.is_response
            assert decoded.rcode in (0, 3)
            if decoded.rcode == 0:
                assert decoded.authorities  # referral to a TLD
