"""Tests for capture, aggregation, and cleaning."""

from __future__ import annotations

import io

import pytest

from repro.collector.aggregate import CentralCollector
from repro.collector.capture import LanderCapture, PcapLikeCapture, StreamingCapture
from repro.collector.cleaning import CleaningConfig, clean_replies
from repro.errors import ConfigurationError, MeasurementError
from repro.icmp.network import DeliveredReply


def reply(site="LAX", address=0x0A000001, identifier=1, sequence=0, timestamp=1.0):
    return DeliveredReply(site, address, identifier, sequence, timestamp)


class TestCaptures:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: StreamingCapture("LAX"),
            lambda: LanderCapture("LAX"),
            lambda: PcapLikeCapture("LAX", io.StringIO()),
        ],
        ids=["streaming", "lander", "pcap"],
    )
    def test_record_and_drain(self, make):
        capture = make()
        records = [reply(timestamp=2.0), reply(address=0x0A000002, timestamp=1.0)]
        for record in records:
            capture.record(record)
        drained = capture.drain()
        assert len(drained) == 2
        assert {r.source_address for r in drained} == {0x0A000001, 0x0A000002}

    @pytest.mark.parametrize(
        "make",
        [
            lambda: StreamingCapture("LAX"),
            lambda: LanderCapture("LAX"),
            lambda: PcapLikeCapture("LAX", io.StringIO()),
        ],
        ids=["streaming", "lander", "pcap"],
    )
    def test_wrong_site_rejected(self, make):
        capture = make()
        with pytest.raises(MeasurementError):
            capture.record(reply(site="MIA"))

    def test_streaming_forwards_to_sink(self):
        received = []
        capture = StreamingCapture("LAX", sink=received.append)
        capture.record(reply())
        assert len(received) == 1
        assert capture.drain() == []  # already forwarded

    def test_lander_orders_by_bin(self):
        capture = LanderCapture("LAX", bin_seconds=10.0)
        capture.record(reply(timestamp=25.0))
        capture.record(reply(address=0x0A000002, timestamp=5.0))
        drained = capture.drain()
        assert drained[0].timestamp == 5.0

    def test_lander_rejects_bad_bin(self):
        with pytest.raises(MeasurementError):
            LanderCapture("LAX", bin_seconds=0)

    def test_pcap_roundtrips_exact_values(self):
        capture = PcapLikeCapture("LAX", io.StringIO())
        original = reply(address=0xC0A80101, identifier=77, sequence=12,
                         timestamp=123.456789)
        capture.record(original)
        restored = capture.drain()[0]
        assert restored.source_address == original.source_address
        assert restored.identifier == original.identifier
        assert restored.sequence == original.sequence
        assert restored.timestamp == pytest.approx(original.timestamp, abs=1e-6)

    def test_drain_clears(self):
        capture = StreamingCapture("LAX")
        capture.record(reply())
        capture.drain()
        assert capture.drain() == []


class TestCentralCollector:
    def test_merges_sites_in_time_order(self):
        collector = CentralCollector([StreamingCapture("LAX"), StreamingCapture("MIA")])
        collector.ingest(reply(site="MIA", timestamp=2.0))
        collector.ingest(reply(site="LAX", timestamp=1.0))
        merged = collector.collect()
        assert [r.site_code for r in merged] == ["LAX", "MIA"]

    def test_missing_site_capture_raises(self):
        collector = CentralCollector([StreamingCapture("LAX")])
        with pytest.raises(MeasurementError):
            collector.ingest(reply(site="MIA"))

    def test_duplicate_captures_rejected(self):
        with pytest.raises(MeasurementError):
            CentralCollector([StreamingCapture("LAX"), StreamingCapture("LAX")])

    def test_needs_captures(self):
        with pytest.raises(MeasurementError):
            CentralCollector([])

    def test_site_codes(self):
        collector = CentralCollector([StreamingCapture("MIA"), StreamingCapture("LAX")])
        assert collector.site_codes == ["LAX", "MIA"]


class TestCleaning:
    PROBED = {0x0A000001, 0x0A000002, 0x0A000003}

    def test_keeps_good_replies(self):
        replies = [reply(), reply(address=0x0A000002)]
        result = clean_replies(replies, self.PROBED, 1, 0.0)
        assert len(result.kept) == 2
        assert result.removed == 0

    def test_removes_wrong_round(self):
        result = clean_replies([reply(identifier=2)], self.PROBED, 1, 0.0)
        assert result.wrong_round == 1
        assert not result.kept

    def test_removes_unsolicited(self):
        result = clean_replies([reply(address=0x0B000001)], self.PROBED, 1, 0.0)
        assert result.unsolicited == 1

    def test_removes_late(self):
        late = reply(timestamp=1000.0)
        result = clean_replies(
            [late], self.PROBED, 1, 0.0, CleaningConfig(late_cutoff_seconds=900.0)
        )
        assert result.late == 1

    def test_reply_exactly_at_cutoff_is_kept(self):
        # The late rule is a strict ">": a reply landing exactly at
        # round_start + late_cutoff_seconds is still on time.
        config = CleaningConfig(late_cutoff_seconds=900.0)
        on_time = reply(timestamp=900.0)
        just_late = reply(address=0x0A000002, timestamp=900.0 + 1e-6)
        result = clean_replies([on_time, just_late], self.PROBED, 1, 0.0, config)
        assert len(result.kept) == 1
        assert result.kept[0].source_address == 0x0A000001
        assert result.late == 1

    def test_config_built_per_call_not_at_import(self):
        # A CleaningConfig() default in the signature would be frozen
        # at module import; the signature must default to None and
        # build the config inside the call (same for the observer).
        assert all(value is None for value in clean_replies.__defaults__)
        result = clean_replies([reply(timestamp=899.0)], self.PROBED, 1, 0.0)
        assert len(result.kept) == 1

    def test_removes_duplicates_keeps_first(self):
        replies = [reply(timestamp=2.0, sequence=9), reply(timestamp=1.0, sequence=5)]
        result = clean_replies(replies, self.PROBED, 1, 0.0)
        assert result.duplicates == 1
        assert result.kept[0].sequence == 5  # earliest wins

    def test_counts_are_consistent(self):
        replies = [
            reply(),                        # kept
            reply(),                        # duplicate
            reply(identifier=9),            # wrong round
            reply(address=0x0B000001),      # unsolicited
            reply(address=0x0A000002, timestamp=5000.0),  # late
        ]
        result = clean_replies(replies, self.PROBED, 1, 0.0)
        assert result.total == 5
        assert len(result.kept) == 1
        assert result.removed == 4

    def test_identifier_wraps_16_bits(self):
        result = clean_replies([reply(identifier=1)], self.PROBED, 0x1_0001, 0.0)
        assert len(result.kept) == 1

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            CleaningConfig(late_cutoff_seconds=0)


class TestCleaningPrecedence:
    """Each removed reply is counted once, under the *first* matching rule.

    Docstring order: wrong-round → unsolicited → late → duplicates.
    These tests build replies matching two rules at once and pin which
    counter takes them.
    """

    PROBED = {0x0A000001, 0x0A000002}
    CONFIG = CleaningConfig(late_cutoff_seconds=900.0)

    def _clean(self, replies):
        return clean_replies(replies, self.PROBED, 1, 0.0, self.CONFIG)

    def test_wrong_round_beats_unsolicited(self):
        # Wrong identifier from an unprobed address: wrong-round wins.
        result = self._clean([reply(address=0x0B000001, identifier=9)])
        assert (result.wrong_round, result.unsolicited) == (1, 0)

    def test_wrong_round_beats_late(self):
        result = self._clean([reply(identifier=9, timestamp=5000.0)])
        assert (result.wrong_round, result.late) == (1, 0)

    def test_unsolicited_beats_late(self):
        result = self._clean([reply(address=0x0B000001, timestamp=5000.0)])
        assert (result.unsolicited, result.late) == (1, 0)

    def test_unsolicited_beats_duplicate(self):
        # Two replies from the same unprobed address: both unsolicited,
        # neither a duplicate (the duplicate rule only sees kept hosts).
        replies = [
            reply(address=0x0B000001, timestamp=1.0),
            reply(address=0x0B000001, timestamp=2.0),
        ]
        result = self._clean(replies)
        assert (result.unsolicited, result.duplicates) == (2, 0)

    def test_late_beats_duplicate(self):
        # A reply that is both late AND a repeat of a kept address must
        # be counted once, as late — the first matching rule.
        replies = [
            reply(timestamp=1.0),                 # kept
            reply(timestamp=1000.0, sequence=1),  # late + would-be dup
        ]
        result = self._clean(replies)
        assert (result.late, result.duplicates) == (1, 0)
        assert len(result.kept) == 1

    def test_late_reply_does_not_mark_address_seen(self):
        # A late first reply must not turn a later on-time reply from
        # the same address into a duplicate: the on-time one is simply
        # later in arrival order, and since the late rule never saw the
        # address as kept, nothing is deduplicated against it.  (With
        # arrival-time sorting a late reply can only precede an on-time
        # one via timestamp ties at the cutoff boundary, so pin the
        # mirror case instead: on-time kept first, late counted late.)
        replies = [
            reply(timestamp=899.0),
            reply(timestamp=1000.0, sequence=1),
        ]
        result = self._clean(replies)
        assert len(result.kept) == 1
        assert result.kept[0].timestamp == 899.0
        assert (result.late, result.duplicates) == (1, 0)

    def test_duplicate_of_kept_only(self):
        # Three replies from one probed address: first kept, the other
        # two duplicates (not late, not unsolicited).
        replies = [reply(timestamp=t, sequence=s) for s, t in enumerate((1.0, 2.0, 3.0))]
        result = self._clean(replies)
        assert len(result.kept) == 1
        assert result.duplicates == 2
        assert result.removed == 2


class TestStreamingCleaner:
    PROBED = {0x0A000001, 0x0A000002, 0x0A000003}

    def _mixed_stream(self):
        return [
            reply(timestamp=1.0),                                  # kept
            reply(timestamp=2.0, sequence=1),                      # duplicate
            reply(address=0x0A000002, timestamp=3.0),              # kept
            reply(address=0x0B000001, timestamp=4.0),              # unsolicited
            reply(identifier=9, timestamp=5.0),                    # wrong round
            reply(address=0x0A000003, timestamp=1000.0),           # late
            reply(address=0x0A000002, timestamp=1001.0),           # late (not dup)
        ]

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 7])
    def test_totals_match_batch_cleaner(self, batch_size):
        from repro.collector.stream import StreamingCleaner

        replies = sorted(
            self._mixed_stream(),
            key=lambda r: (r.timestamp, r.source_address, r.site_code,
                           r.identifier, r.sequence),
        )
        expected = clean_replies(replies, self.PROBED, 1, 0.0)
        cleaner = StreamingCleaner(self.PROBED, 1, 0.0)
        batches = [
            replies[i:i + batch_size] for i in range(0, len(replies), batch_size)
        ]
        increments = list(cleaner.stream(batches))
        totals = cleaner.totals
        assert totals.kept == expected.kept
        assert totals.wrong_round == expected.wrong_round
        assert totals.unsolicited == expected.unsolicited
        assert totals.late == expected.late
        assert totals.duplicates == expected.duplicates
        assert totals.total == expected.total
        # The per-batch increments partition the totals.
        assert sum(r.total for r in increments) == expected.total
        assert cleaner.batches == len(batches)

    def test_duplicates_detected_across_batches(self):
        from repro.collector.stream import StreamingCleaner

        cleaner = StreamingCleaner(self.PROBED, 1, 0.0)
        first = cleaner.feed([reply(timestamp=1.0)])
        second = cleaner.feed([reply(timestamp=2.0, sequence=1)])
        assert len(first.kept) == 1
        assert second.duplicates == 1
        assert cleaner.totals.duplicates == 1

    def test_poisoned_batch_commits_nothing(self):
        from repro.collector.stream import StreamingCleaner

        cleaner = StreamingCleaner(self.PROBED, 1, 0.0)
        cleaner.feed([reply(timestamp=1.0)])
        before = (
            list(cleaner.totals.kept),
            cleaner.totals.removed,
            cleaner.batches,
        )
        # A non-reply object poisons the batch part-way through the
        # sorted pass; the cleaner must stay exactly as it was.
        with pytest.raises(AttributeError):
            cleaner.feed([reply(address=0x0A000002, timestamp=2.0), object()])
        after = (
            list(cleaner.totals.kept),
            cleaner.totals.removed,
            cleaner.batches,
        )
        assert before == after
        # And the cleaner still works afterwards.
        result = cleaner.feed([reply(address=0x0A000002, timestamp=2.0)])
        assert len(result.kept) == 1

    def test_identifier_wraps_16_bits(self):
        from repro.collector.stream import StreamingCleaner

        cleaner = StreamingCleaner(self.PROBED, 0x1_0001, 0.0)
        result = cleaner.feed([reply(identifier=1)])
        assert len(result.kept) == 1
