"""Whole-program lint engine: index, call graph, cache, --jobs, SARIF."""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.lint import lint_paths
from repro.lint.cache import LintCache, digest_text, rules_fingerprint
from repro.lint.callgraph import CallGraph, format_chain
from repro.lint.cli import main as lint_main
from repro.lint.engine import collect_files, parse_file
from repro.lint.index import ProjectIndex, module_name_of
from repro.lint.rules.interproc import (
    WholeProgramContext,
    _discover_pool_roots,
)
from repro.lint.sarif import to_sarif
from repro.lint.violations import all_rules
from repro.obs import Observer

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")


def _write_tree(root, files):
    paths = []
    for relative, body in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
        paths.append(str(path))
    return sorted(paths)


def _parse_all(paths):
    sources = []
    for path in collect_files(paths):
        source, _ = parse_file(path, force_kind="library")
        if source is not None:
            sources.append(source)
    return sources


# -- ProjectIndex ----------------------------------------------------------


def test_module_name_anchors_at_last_repro_component():
    assert module_name_of("src/repro/bgp/cache.py") == "repro.bgp.cache"
    assert module_name_of("src/repro/rng.py") == "repro.rng"
    assert module_name_of("src/repro/bgp/__init__.py") == "repro.bgp"
    assert (
        module_name_of("tests/lint_fixtures/interproc/w501_collision/repro/alpha.py")
        == "repro.alpha"
    )
    assert module_name_of("tools/checkdocs.py") == "tools.checkdocs"


def test_index_resolves_imports_methods_and_globals(tmp_path):
    paths = _write_tree(
        tmp_path,
        {
            "repro/first.py": """
                '''Module one.'''

                _TABLE = {}
                LIMIT = 3


                def top(value):
                    '''Top-level.'''
                    return value


                class Engine:
                    '''A class.'''

                    def run(self):
                        '''Method calling a sibling method.'''
                        return self.step()

                    def step(self):
                        '''Sibling.'''
                        return 1
            """,
            "repro/second.py": """
                '''Module two.'''

                from repro.first import top


                def caller(value):
                    '''Crosses the module boundary.'''
                    return top(value)
            """,
        },
    )
    index = ProjectIndex.build(_parse_all(paths))
    first = index.module_named("repro.first")
    second = index.module_named("repro.second")
    assert first is not None and second is not None
    assert "repro.first.top" in index.functions
    assert "repro.first.Engine.run" in index.functions
    assert first.mutable_globals.keys() == {"_TABLE"}
    assert "LIMIT" in first.global_names

    import ast

    call = next(
        node
        for node in ast.walk(second.tree)
        if isinstance(node, ast.Call)
    )
    assert index.resolve(second, call.func) == "repro.first.top"
    run_info = index.functions["repro.first.Engine.run"]
    self_call = next(
        node
        for node in ast.walk(run_info.node)
        if isinstance(node, ast.Call)
    )
    assert (
        index.resolve(first, self_call.func, class_name="Engine")
        == "repro.first.Engine.step"
    )


# -- CallGraph -------------------------------------------------------------


def test_callgraph_edges_reachability_and_nested_attribution(tmp_path):
    paths = _write_tree(
        tmp_path,
        {
            "repro/graph.py": """
                '''Call-graph shapes: direct, reference, nested.'''


                def leaf():
                    '''Bottom.'''
                    return 0


                def middle():
                    '''Calls leaf directly.'''
                    return leaf()


                def host(worker):
                    '''Higher-order: receives a callable.'''
                    return worker()


                def outer():
                    '''Nested def calls leaf; host receives middle by name.'''

                    def inner():
                        return leaf()

                    host(middle)
                    return inner()
            """,
        },
    )
    index = ProjectIndex.build(_parse_all(paths))
    graph = CallGraph(index)
    edges = {
        (site.caller, site.callee, site.is_reference)
        for sites in graph.edges.values()
        for site in sites
    }
    assert ("repro.graph.middle", "repro.graph.leaf", False) in edges
    # Nested def's call attributes to the enclosing function.
    assert ("repro.graph.outer", "repro.graph.leaf", False) in edges
    # middle passed as an argument becomes a reference edge.
    assert ("repro.graph.outer", "repro.graph.middle", True) in edges

    reach = graph.reachable(["repro.graph.outer"])
    assert "repro.graph.leaf" in reach
    assert "repro.graph.middle" in reach
    chain = graph.chain(reach, "repro.graph.leaf")
    assert chain[0] == "repro.graph.outer"
    assert chain[-1] == "repro.graph.leaf"
    assert " -> " in format_chain(chain)


def test_pool_root_discovery_covers_indirection_and_hosts(tmp_path):
    paths = _write_tree(
        tmp_path,
        {
            "repro/fan.py": """
                '''Pool-target shapes: direct, mapper alias, host param.'''

                from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


                def _direct(payload):
                    '''Submitted directly.'''
                    return payload


                def _via_mapper(payload):
                    '''Reached through a mapper alias.'''
                    return payload


                def _promoted(payload):
                    '''Passed into a higher-order host.'''
                    return payload


                def run_direct(items):
                    '''pool.map with a resolved name.'''
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(_direct, items))


                def run_mapper(items):
                    '''mapper = pool.map indirection.'''
                    with ProcessPoolExecutor() as pool:
                        mapper = pool.map
                        return list(mapper(_via_mapper, items))


                def host(worker, items):
                    '''The pool target is a parameter.'''
                    with ThreadPoolExecutor() as pool:
                        return list(pool.map(worker, items))


                def run_promoted(items):
                    '''Callers of host promote their argument to a root.'''
                    return host(_promoted, items)
            """,
        },
    )
    index = ProjectIndex.build(_parse_all(paths))
    roots = _discover_pool_roots(index)
    assert roots["repro.fan._direct"].kind == "process"
    assert roots["repro.fan._via_mapper"].kind == "process"
    assert roots["repro.fan._promoted"].kind == "thread"
    # The higher-order host itself is a root too (its param executes).
    assert "repro.fan.host" in roots


# -- incremental cache -----------------------------------------------------


def _lint_fixture_dir(cache_dir):
    tree = os.path.join(FIXTURES, "interproc", "w503_accum")
    return lint_paths(
        [tree], force_kind="library", cache_dir=str(cache_dir)
    )


def test_cache_hits_after_cold_run_and_identical_output(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = _lint_fixture_dir(cache_dir)
    warm = _lint_fixture_dir(cache_dir)
    assert cold.cache_hits == 0 and cold.cache_misses > 0
    assert warm.cache_misses == 0
    assert warm.cache_hits == cold.cache_misses
    assert warm.project_cache_hit and not cold.project_cache_hit
    # Cached replay renders byte-identically.
    assert warm.to_json() == cold.to_json()
    assert warm.to_text() == cold.to_text()


def test_cache_invalidated_by_content_change(tmp_path):
    source = tmp_path / "module.py"
    source.write_text(
        '"""A module."""\n\n\ndef f():\n    """F."""\n    return 1\n',
        encoding="utf-8",
    )
    cache_dir = tmp_path / "cache"
    first = lint_paths(
        [str(source)], force_kind="library", cache_dir=str(cache_dir)
    )
    assert first.cache_hits == 0
    # Unchanged content replays.
    second = lint_paths(
        [str(source)], force_kind="library", cache_dir=str(cache_dir)
    )
    assert second.cache_misses == 0
    # Edited content misses and re-lints (now with a finding).
    source.write_text(
        '"""A module."""\nimport random\n\n\ndef f():\n    """F."""\n'
        "    return random.random()\n",
        encoding="utf-8",
    )
    third = lint_paths(
        [str(source)], force_kind="library", cache_dir=str(cache_dir)
    )
    assert third.cache_hits == 0
    assert any(v.rule == "D101" for v in third.violations)


def test_cache_invalidated_by_rule_version_bump(tmp_path, monkeypatch):
    source = tmp_path / "module.py"
    source.write_text(
        '"""A module."""\n\n\ndef f():\n    """F."""\n    return 1\n',
        encoding="utf-8",
    )
    cache_dir = tmp_path / "cache"
    lint_paths([str(source)], force_kind="library", cache_dir=str(cache_dir))
    warm = lint_paths(
        [str(source)], force_kind="library", cache_dir=str(cache_dir)
    )
    assert warm.cache_misses == 0
    # Bumping a file rule's version changes the file fingerprint, so
    # the per-file entry written above no longer matches — but the
    # project fingerprint covers only project-scope rules, so that
    # entry still replays.
    file_rule = next(r for r in all_rules() if r.rule_id == "D101")
    monkeypatch.setattr(file_rule, "version", 99, raising=False)
    bumped = lint_paths(
        [str(source)], force_kind="library", cache_dir=str(cache_dir)
    )
    assert bumped.cache_misses == 1
    assert bumped.project_cache_hit
    # Bumping a project rule invalidates the project entry too.
    project_rule = next(r for r in all_rules() if r.rule_id == "W501")
    monkeypatch.setattr(project_rule, "version", 99, raising=False)
    rebumped = lint_paths(
        [str(source)], force_kind="library", cache_dir=str(cache_dir)
    )
    assert not rebumped.project_cache_hit


def test_rules_fingerprint_tracks_versions():
    class _Probe:
        rule_id = "X900"
        version = 1

    first = rules_fingerprint([_Probe()])
    _Probe.version = 2
    second = rules_fingerprint([_Probe()])
    assert first != second


def test_cache_survives_corrupt_entries(tmp_path):
    cache = LintCache(str(tmp_path))
    key = LintCache.file_key("a.py", digest_text("x"), "library", "fp")
    entry = os.path.join(str(tmp_path), key[:2], f"{key}.json")
    os.makedirs(os.path.dirname(entry), exist_ok=True)
    with open(entry, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    assert cache.load(key) is None
    assert cache.misses == 1


# -- --jobs parity ---------------------------------------------------------


def test_jobs_output_byte_identical_to_serial():
    tree = os.path.join(FIXTURES, "interproc")
    serial = lint_paths([tree], force_kind="library")
    parallel = lint_paths([tree], force_kind="library", jobs=2)
    assert parallel.to_json() == serial.to_json()
    assert parallel.to_text() == serial.to_text()
    assert not serial.ok  # the corpus is not empty: parity is meaningful


# -- SARIF -----------------------------------------------------------------


def test_sarif_output_shape_and_determinism():
    bad = os.path.join(FIXTURES, "d101_global_random.py")
    result = lint_paths([bad], force_kind="library")
    assert result.violations
    rendered = to_sarif(result)
    assert rendered == to_sarif(result)
    document = json.loads(rendered)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    entry = run["results"][0]
    violation = result.violations[0]
    assert entry["ruleId"] == violation.rule
    region = entry["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == violation.line
    assert region["startColumn"] == violation.col + 1  # 0-based -> 1-based


def test_cli_sarif_and_output_file(tmp_path, capsys):
    bad = os.path.join(FIXTURES, "d101_global_random.py")
    out = tmp_path / "report.sarif"
    code = lint_main(
        [bad, "--kind=library", "--format=sarif", "--no-cache",
         f"--output={out}"]
    )
    assert code == 1
    capsys.readouterr()
    document = json.loads(out.read_text(encoding="utf-8"))
    assert document["runs"][0]["results"]


def test_cli_jobs_and_cache_flags(tmp_path, capsys):
    clean = os.path.join(FIXTURES, "clean.py")
    cache_dir = tmp_path / "cache"
    assert (
        lint_main(
            [clean, "--kind=library", f"--cache-dir={cache_dir}", "--stats"]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "misses" in captured.err
    assert (
        lint_main(
            [clean, "--kind=library", f"--cache-dir={cache_dir}", "--stats",
             "--jobs=2"]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "2 hits, 0 misses" in captured.err  # file entry + project entry


# -- observability ---------------------------------------------------------


def test_lint_run_emits_spans_and_cache_counters(tmp_path):
    observer = Observer.collecting()
    tree = os.path.join(FIXTURES, "interproc", "w502_escape")
    lint_paths(
        [tree],
        force_kind="library",
        cache_dir=str(tmp_path / "cache"),
        observer=observer,
    )
    names = observer.tracer.span_names()
    for expected in ("lint.run", "lint.parse", "lint.files", "lint.project"):
        assert expected in names, names
    counters = observer.metrics.to_dict()["counters"]
    assert "lint.cache.misses" in counters
    assert counters["lint.cache.misses"] > 0


# -- whole-program context sharing ----------------------------------------


def test_context_is_lazy_and_shared():
    tree = os.path.join(FIXTURES, "interproc", "w502_escape")
    sources = []
    for path in collect_files([tree]):
        source, _ = parse_file(path, force_kind="library")
        sources.append(source)
    context = WholeProgramContext(sources)
    assert context._index is None
    index = context.index
    assert context.index is index  # built once
    graph = context.graph
    assert context.graph is graph
    assert context.pool_roots  # the fixture has a process pool


def test_real_tree_whole_program_rules_are_clean():
    """W501/W502/W503 over the real tree: zero unsuppressed findings.

    Regression anchor for the triage this PR performed: the one W503
    hit (the dict-backed reference path in repro.load.weighting) is
    suppressed in place with a justification, and nothing else fires.
    """
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = [
        os.path.join(root, name)
        for name in ("src", "tests", "benchmarks", "examples", "tools")
    ]
    result = lint_paths(
        [path for path in paths if os.path.isdir(path)],
        rule_ids=["W501", "W502", "W503"],
    )
    assert result.ok, result.to_text()


def test_weighting_reference_path_is_w503_suppressed_not_invisible():
    """The suppressed W503 site resurfaces if its comment is removed."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    weighting = os.path.join(root, "src", "repro", "load", "weighting.py")
    with open(weighting, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert "disable=D110,W503" in text
