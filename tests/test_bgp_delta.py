"""Equivalence and cache tests for incremental (delta) propagation.

The delta engine's contract is *bit-equality*: for any policy, the
outcome produced against a baseline must be field-identical to a
scratch ``compute_routes`` run — including tie-hash picks, pins,
near-route maps and alternate sites.  These tests enforce that across
the paper's prepend ladder, site withdrawals, and several independently
seeded topologies.
"""

from __future__ import annotations

import pytest

from repro.bgp.cache import (
    RoutingCache,
    default_routing_cache,
    internet_fingerprint,
    policy_fingerprint,
)
from repro.bgp.delta import DeltaPropagator, delta_routes
from repro.bgp.instability import FlipModel
from repro.bgp.propagation import RoutingConfig, RoutingOutcome, compute_routes
from repro.core.experiments import BROOT_PREPEND_CONFIGS, prepend_sweep
from repro.core.scenarios import broot_like, tangled_like
from repro.core.verfploeter import Verfploeter
from repro.errors import ConfigurationError


def selection_identity(selection):
    """Every externally observable field of one route selection."""
    return (
        selection.asn,
        selection.route_class,
        selection.path_length,
        selection.primary_site,
        selection.alternate_site,
        selection.candidates,
        selection.near_routes,
        selection.pinned,
        selection.as_path,
    )


def assert_bit_identical(delta_outcome, scratch_outcome):
    assert set(delta_outcome.selections) == set(scratch_outcome.selections)
    for asn, scratch in scratch_outcome.selections.items():
        assert selection_identity(delta_outcome.selections[asn]) == (
            selection_identity(scratch)
        ), f"AS{asn} diverged"
    assert dict(delta_outcome.catchment_map().items()) == dict(
        scratch_outcome.catchment_map().items()
    )


@pytest.fixture(scope="module")
def broot():
    return broot_like(scale="tiny", seed=7)


@pytest.fixture(scope="module")
def broot_baseline(broot):
    return compute_routes(broot.internet, broot.service.default_policy())


class TestEquivalence:
    @pytest.mark.parametrize(
        "label,prepends",
        BROOT_PREPEND_CONFIGS,
        ids=[label for label, _ in BROOT_PREPEND_CONFIGS],
    )
    def test_prepend_configs_bit_identical(
        self, broot, broot_baseline, label, prepends
    ):
        policy = broot.service.policy(prepends=prepends)
        delta = delta_routes(broot_baseline, policy)
        scratch = compute_routes(broot.internet, policy)
        assert_bit_identical(delta, scratch)

    @pytest.mark.parametrize("site", ["LAX", "MIA"])
    def test_site_withdraw_bit_identical(self, broot, broot_baseline, site):
        policy = broot.service.policy(withdrawn=[site])
        delta = delta_routes(broot_baseline, policy)
        scratch = compute_routes(broot.internet, policy)
        assert_bit_identical(delta, scratch)

    @pytest.mark.parametrize("seed", [3, 17, 123])
    def test_random_topologies_bit_identical(self, seed):
        scenario = tangled_like(scale="tiny", seed=seed)
        baseline = compute_routes(
            scenario.internet, scenario.service.default_policy()
        )
        for site in scenario.service.site_codes:
            policy = scenario.service.policy(prepends={site: 2})
            delta = delta_routes(baseline, policy)
            scratch = compute_routes(scenario.internet, policy)
            assert_bit_identical(delta, scratch)

    def test_identical_policy_splices_everything(self, broot, broot_baseline):
        propagator = DeltaPropagator(broot_baseline)
        outcome = propagator.propagate(broot.service.default_policy())
        assert propagator.stats.rebuilt == 0
        assert propagator.stats.spliced == propagator.stats.total
        assert propagator.stats.reuse_fraction == 1.0
        assert_bit_identical(outcome, broot_baseline)

    def test_localized_change_reuses_baseline_objects(
        self, broot, broot_baseline
    ):
        propagator = DeltaPropagator(broot_baseline)
        outcome = propagator.propagate(broot.service.policy(prepends={"MIA": 1}))
        stats = propagator.stats
        assert stats.spliced > 0 and stats.rebuilt > 0
        assert 0.0 < stats.reuse_fraction < 1.0
        shared = sum(
            1
            for asn, selection in outcome.selections.items()
            if selection is broot_baseline.selections.get(asn)
        )
        # Spliced selections (and rebuilt-but-equal ones) are the very
        # same objects as the baseline's — structural sharing, not copies.
        assert shared >= stats.spliced

    def test_baseline_never_mutated(self, broot, broot_baseline):
        before = {
            asn: selection_identity(selection)
            for asn, selection in broot_baseline.selections.items()
        }
        delta_routes(broot_baseline, broot.service.policy(withdrawn=["LAX"]))
        after = {
            asn: selection_identity(selection)
            for asn, selection in broot_baseline.selections.items()
        }
        assert before == after

    def test_requires_propagation_state(self, broot, broot_baseline):
        bare = RoutingOutcome(
            broot.internet,
            broot_baseline.policy,
            dict(broot_baseline.selections),
            broot_baseline.flip_model,
        )
        with pytest.raises(ConfigurationError):
            DeltaPropagator(bare)


class TestRoutingCache:
    def test_hit_delta_full_accounting(self, broot):
        cache = RoutingCache(maxsize=8)
        service = broot.service
        internet = broot.internet
        base = cache.get_or_compute(internet, service.default_policy())
        assert cache.stats.full_computes == 1
        again = cache.get_or_compute(internet, service.default_policy())
        assert again is base
        assert cache.stats.hits == 1
        variant_policy = service.policy(prepends={"MIA": 2})
        variant = cache.get_or_compute(internet, variant_policy)
        assert cache.stats.delta_computes == 1
        assert cache.stats.lookups == 3
        assert_bit_identical(variant, compute_routes(internet, variant_policy))

    def test_lru_eviction(self, broot):
        cache = RoutingCache(maxsize=2)
        service = broot.service
        internet = broot.internet
        policies = [
            service.default_policy(),
            service.policy(prepends={"MIA": 1}),
            service.policy(prepends={"MIA": 2}),
        ]
        for policy in policies:
            cache.get_or_compute(internet, policy)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The evicted (oldest) entry is recomputed — as a delta against
        # a surviving entry, not a full propagation.
        cache.get_or_compute(internet, policies[0])
        assert cache.stats.hits == 0
        assert cache.stats.full_computes == 1
        assert cache.stats.delta_computes == 3

    def test_config_and_flip_model_partition_the_key(self, broot):
        cache = RoutingCache()
        policy = broot.service.default_policy()
        plain = cache.get_or_compute(broot.internet, policy)
        era1 = cache.get_or_compute(
            broot.internet, policy, config=RoutingConfig(era=1)
        )
        assert era1 is not plain
        other_flips = cache.get_or_compute(
            broot.internet, policy, flip_model=FlipModel(broot.internet.seed + 1)
        )
        assert other_flips is not plain
        # Neither variant may delta off the plain baseline: a different
        # config or flip model invalidates every cached selection.
        assert cache.stats.full_computes == 3
        assert cache.stats.delta_computes == 0

    def test_delta_requires_internet_object_identity(self):
        first = broot_like(scale="tiny", seed=7)
        second = broot_like(scale="tiny", seed=7)
        assert internet_fingerprint(first.internet) == internet_fingerprint(
            second.internet
        )
        cache = RoutingCache()
        cache.get_or_compute(first.internet, first.service.default_policy())
        cache.get_or_compute(
            second.internet, second.service.policy(prepends={"MIA": 1})
        )
        # Equal fingerprints but distinct objects: splicing selections
        # across topologies would be unsound, so this is a full compute.
        assert cache.stats.full_computes == 2
        assert cache.stats.delta_computes == 0

    def test_fingerprints(self, broot):
        service = broot.service
        assert policy_fingerprint(service.default_policy()) == (
            policy_fingerprint(service.default_policy())
        )
        assert policy_fingerprint(service.default_policy()) != (
            policy_fingerprint(service.policy(prepends={"MIA": 1}))
        )
        other = tangled_like(scale="tiny", seed=11)
        assert internet_fingerprint(broot.internet) != (
            internet_fingerprint(other.internet)
        )

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ConfigurationError):
            RoutingCache(maxsize=0)

    def test_default_cache_is_a_singleton(self):
        assert default_routing_cache() is default_routing_cache()


class TestSweepIntegration:
    def test_prepend_sweep_cache_accounting(self, broot):
        cache = RoutingCache()
        verfploeter = Verfploeter(broot.internet, broot.service)
        prepend_sweep(verfploeter, broot.atlas, cache=cache)
        # One full propagation (the seeded baseline), one hit (the
        # "equal" configuration is that baseline), deltas for the rest.
        assert cache.stats.full_computes == 1
        assert cache.stats.hits == 1
        assert cache.stats.delta_computes == len(BROOT_PREPEND_CONFIGS) - 1

    def test_prepend_sweep_parallel_matches_serial(self, broot):
        verfploeter = Verfploeter(broot.internet, broot.service)
        serial = prepend_sweep(verfploeter, broot.atlas, cache=RoutingCache())
        threaded = prepend_sweep(
            verfploeter, broot.atlas, cache=RoutingCache(), parallel=4
        )
        assert [m.label for m in serial] == [m.label for m in threaded]
        for one, other in zip(serial, threaded):
            assert one.verfploeter_fractions == other.verfploeter_fractions
            assert one.atlas_fractions == other.atlas_fractions
