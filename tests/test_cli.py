"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

TINY = ["--scenario", "broot", "--scale", "tiny"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--scenario", "xroot"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--scale", "galactic"])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "scan", "sweep", "stability", "coverage",
            "loadmap", "failure", "suggest", "playbook",
        ):
            args = parser.parse_args([command] + TINY + (
                ["--rounds", "2"] if command == "stability" else []
            ))
            assert args.command == command


class TestCommands:
    def test_scan(self, capsys):
        assert main(["scan", *TINY]) == 0
        output = capsys.readouterr().out
        assert "catchment" in output
        assert "LAX" in output and "MIA" in output

    def test_scan_with_map_and_rtt(self, capsys):
        assert main(["scan", *TINY, "--map", "--rtt"]) == 0
        output = capsys.readouterr().out
        assert "legend:" in output
        assert "median RTT" in output

    def test_coverage(self, capsys):
        assert main(["coverage", *TINY]) == 0
        assert "coverage ratio" in capsys.readouterr().out

    def test_stability(self, capsys):
        assert main(["stability", *TINY, "--rounds", "4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 9" in output
        assert "Table 7" in output

    def test_failure(self, capsys):
        assert main(["failure", *TINY, "--site", "MIA"]) == 0
        output = capsys.readouterr().out
        assert "MIA" in output
        assert "load multiple" in output

    def test_suggest(self, capsys):
        assert main(["suggest", *TINY, "--count", "2"]) == 0
        output = capsys.readouterr().out
        assert "suggested" in output or "no underserved" in output

    def test_loadmap(self, capsys):
        assert main(["loadmap", *TINY]) == 0
        assert "load share" in capsys.readouterr().out

    def test_sweep_tangled_site(self, capsys):
        assert main(
            ["sweep", "--scenario", "tangled", "--scale", "tiny",
             "--site", "MIA"]
        ) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_seed_override_changes_topology(self, capsys):
        main(["scan", *TINY, "--seed", "1"])
        first = capsys.readouterr().out
        main(["scan", *TINY, "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestObservability:
    """--metrics-out / --trace-out round-trips and artifact determinism."""

    def test_metrics_file_matches_in_memory_registry(self, tmp_path, capsys):
        from repro.obs import Observer

        observer = Observer.collecting()
        out = tmp_path / "metrics.json"
        assert main(
            ["scan", *TINY, "--metrics-out", str(out)], observer=observer
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["counters"] == json.loads(
            observer.metrics.to_json()
        )["counters"]
        assert payload["meta"]["scenario"] == "broot"
        assert payload["meta"]["scale"] == "tiny"
        assert "fingerprint" in payload["meta"]

    def test_trace_file_matches_in_memory_tracer(self, tmp_path, capsys):
        from repro.obs import Observer

        observer = Observer.collecting()
        out = tmp_path / "trace.json"
        assert main(
            ["scan", *TINY, "--trace-out", str(out)], observer=observer
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["spans"] == json.loads(
            observer.tracer.to_json()
        )["spans"]
        names = [span["name"] for span in payload["spans"]]
        assert "scan.round" in names

    def test_metrics_and_trace_share_a_fingerprint(self, tmp_path, capsys):
        metrics_out = tmp_path / "m.json"
        trace_out = tmp_path / "t.json"
        assert main(
            ["scan", *TINY, "--metrics-out", str(metrics_out),
             "--trace-out", str(trace_out)]
        ) == 0
        metrics_meta = json.loads(metrics_out.read_text())["meta"]
        trace_meta = json.loads(trace_out.read_text())["meta"]
        assert metrics_meta == trace_meta

    def test_scan_prints_metrics_table_when_collecting(self, tmp_path, capsys):
        assert main(
            ["scan", *TINY, "--metrics-out", str(tmp_path / "m.json")]
        ) == 0
        output = capsys.readouterr().out
        assert "pipeline metrics:" in output
        assert "probe.probes_sent" in output

    def test_two_seeded_runs_write_identical_artifacts(self, tmp_path, capsys):
        def run(tag):
            metrics_out = tmp_path / f"m-{tag}.json"
            trace_out = tmp_path / f"t-{tag}.json"
            assert main(
                ["sweep", *TINY, "--metrics-out", str(metrics_out),
                 "--trace-out", str(trace_out)]
            ) == 0
            return metrics_out.read_bytes(), trace_out.read_bytes()

        assert run("first") == run("second")

    def test_profile_flag_prints_report(self, capsys):
        assert main(["scan", *TINY, "--profile"]) == 0
        assert "profile (wall clock, opt-in):" in capsys.readouterr().out
