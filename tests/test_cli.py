"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

TINY = ["--scenario", "broot", "--scale", "tiny"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--scenario", "xroot"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--scale", "galactic"])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "scan", "sweep", "stability", "coverage",
            "loadmap", "failure", "suggest",
        ):
            args = parser.parse_args([command] + TINY + (
                ["--rounds", "2"] if command == "stability" else []
            ))
            assert args.command == command


class TestCommands:
    def test_scan(self, capsys):
        assert main(["scan", *TINY]) == 0
        output = capsys.readouterr().out
        assert "catchment" in output
        assert "LAX" in output and "MIA" in output

    def test_scan_with_map_and_rtt(self, capsys):
        assert main(["scan", *TINY, "--map", "--rtt"]) == 0
        output = capsys.readouterr().out
        assert "legend:" in output
        assert "median RTT" in output

    def test_coverage(self, capsys):
        assert main(["coverage", *TINY]) == 0
        assert "coverage ratio" in capsys.readouterr().out

    def test_stability(self, capsys):
        assert main(["stability", *TINY, "--rounds", "4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 9" in output
        assert "Table 7" in output

    def test_failure(self, capsys):
        assert main(["failure", *TINY, "--site", "MIA"]) == 0
        output = capsys.readouterr().out
        assert "MIA" in output
        assert "load multiple" in output

    def test_suggest(self, capsys):
        assert main(["suggest", *TINY, "--count", "2"]) == 0
        output = capsys.readouterr().out
        assert "suggested" in output or "no underserved" in output

    def test_loadmap(self, capsys):
        assert main(["loadmap", *TINY]) == 0
        assert "load share" in capsys.readouterr().out

    def test_sweep_tangled_site(self, capsys):
        assert main(
            ["sweep", "--scenario", "tangled", "--scale", "tiny",
             "--site", "MIA"]
        ) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_seed_override_changes_topology(self, capsys):
        main(["scan", *TINY, "--seed", "1"])
        first = capsys.readouterr().out
        main(["scan", *TINY, "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second
