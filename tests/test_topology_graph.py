"""Tests for AS objects, relationships, and the prefix allocator."""

from __future__ import annotations

import pytest

from repro.errors import AddressError, TopologyError
from repro.netaddr.prefix import Prefix
from repro.topology.allocator import PrefixAllocator
from repro.topology.asys import ASTier, AutonomousSystem, PoP
from repro.topology.relationships import Relationship, RelationshipGraph


class TestAutonomousSystem:
    def test_multi_pop_flag(self):
        single = AutonomousSystem(1, ASTier.STUB, "X", "US", [1])
        multi = AutonomousSystem(2, ASTier.TRANSIT, "Y", "US", [1, 2])
        assert not single.is_multi_pop
        assert multi.is_multi_pop

    def test_rejects_bad_tier(self):
        with pytest.raises(ValueError):
            AutonomousSystem(1, "mega", "X", "US", [])

    def test_pop_location(self):
        pop = PoP(0, 1, "US", 40.0, -100.0)
        assert pop.location == (40.0, -100.0)


class TestRelationshipGraph:
    def test_customer_provider(self):
        graph = RelationshipGraph()
        graph.add_customer_provider(2, 1)
        assert graph.providers_of(2) == [1]
        assert graph.customers_of(1) == [2]
        assert graph.relationship(1, 2) == Relationship.CUSTOMER
        assert graph.relationship(2, 1) == Relationship.PROVIDER

    def test_peering_symmetric(self):
        graph = RelationshipGraph()
        graph.add_peering(1, 2)
        assert graph.peers_of(1) == [2]
        assert graph.peers_of(2) == [1]
        assert graph.relationship(1, 2) == Relationship.PEER

    def test_self_loop_rejected(self):
        graph = RelationshipGraph()
        with pytest.raises(TopologyError):
            graph.add_peering(1, 1)

    def test_duplicate_edge_rejected(self):
        graph = RelationshipGraph()
        graph.add_customer_provider(2, 1)
        with pytest.raises(TopologyError):
            graph.add_peering(1, 2)
        with pytest.raises(TopologyError):
            graph.add_customer_provider(1, 2)

    def test_has_link_either_direction(self):
        graph = RelationshipGraph()
        graph.add_customer_provider(2, 1)
        assert graph.has_link(1, 2)
        assert graph.has_link(2, 1)
        assert not graph.has_link(1, 3)

    def test_degree(self):
        graph = RelationshipGraph()
        graph.add_customer_provider(2, 1)
        graph.add_peering(1, 3)
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1

    def test_edges_enumeration(self):
        graph = RelationshipGraph()
        graph.add_customer_provider(2, 1)
        graph.add_peering(1, 3)
        edges = set(graph.edges())
        assert (2, 1, "cp") in edges
        assert (1, 3, "pp") in edges
        assert len(edges) == 2

    def test_relationship_unknown_neighbor(self):
        graph = RelationshipGraph()
        with pytest.raises(TopologyError):
            graph.relationship(1, 2)


class TestPrefixAllocator:
    def test_allocates_aligned_nonoverlapping(self):
        allocator = PrefixAllocator(Prefix("10.0.0.0/8"))
        first = allocator.allocate(16)
        second = allocator.allocate(16)
        assert first != second
        assert not first.overlaps(second)
        assert first.network % first.size == 0

    def test_alignment_after_small_allocation(self):
        allocator = PrefixAllocator(Prefix("10.0.0.0/8"))
        allocator.allocate(24)
        big = allocator.allocate(16)
        assert big.network % big.size == 0

    def test_exhaustion(self):
        allocator = PrefixAllocator(Prefix("10.0.0.0/24"))
        allocator.allocate(25)
        allocator.allocate(25)
        with pytest.raises(TopologyError):
            allocator.allocate(25)

    def test_rejects_shorter_than_pool(self):
        allocator = PrefixAllocator(Prefix("10.0.0.0/8"))
        with pytest.raises(AddressError):
            allocator.allocate(7)

    def test_remaining_decreases(self):
        allocator = PrefixAllocator(Prefix("10.0.0.0/8"))
        before = allocator.remaining
        allocator.allocate(16)
        assert allocator.remaining == before - (1 << 16)
