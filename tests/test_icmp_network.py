"""Tests for the host responder and the simulated dataplane."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.icmp.network import SimulatedDataplane
from repro.icmp.packets import EchoMessage, ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST, build_probe, build_reply
from repro.icmp.responder import HostResponder


@pytest.fixture(scope="module")
def dataplane(two_site_routing):
    return SimulatedDataplane(two_site_routing)


def request(identifier=1, sequence=2):
    return EchoMessage(ICMP_ECHO_REQUEST, identifier, sequence)


class TestHostResponder:
    def test_unpopulated_block_silent(self, tiny_internet):
        responder = HostResponder(tiny_internet)
        assert responder.respond(0xDEADBEEF, request(), 0) == []

    def test_reply_mirrors_identifier(self, tiny_internet, two_site_routing):
        responder = HostResponder(tiny_internet)
        for block in list(tiny_internet.blocks)[:100]:
            events = responder.respond((block << 8) | 1, request(77, 88), 0)
            for event in events:
                assert event.message.identifier == 77
                assert event.message.sequence == 88
                assert event.message.is_reply

    def test_non_request_ignored(self, tiny_internet):
        responder = HostResponder(tiny_internet)
        block = list(tiny_internet.blocks)[0]
        reply = EchoMessage(ICMP_ECHO_REPLY, 1, 2)
        assert responder.respond((block << 8) | 1, reply, 0) == []

    def test_response_rate_matches_model(self, tiny_internet):
        responder = HostResponder(tiny_internet)
        blocks = list(tiny_internet.blocks)
        responded = sum(
            bool(responder.respond((block << 8) | 1, request(), 0))
            for block in blocks
        )
        rate = responded / len(blocks)
        assert 0.40 < rate < 0.70  # ~55% with country overrides and churn

    def test_off_address_replies_in_same_block(self, tiny_internet):
        responder = HostResponder(tiny_internet)
        model = tiny_internet.host_model
        off_blocks = [
            block for block in tiny_internet.blocks
            if model.replies_from_other_address(block)
        ]
        found_off = False
        for block in off_blocks:
            events = responder.respond((block << 8) | 1, request(), 0)
            for event in events:
                assert event.source_block == block
                if event.source_address != ((block << 8) | 1):
                    found_off = True
        if off_blocks:
            assert found_off or not any(
                responder.respond((b << 8) | 1, request(), 0) for b in off_blocks
            )


class TestDataplane:
    def test_replies_delivered_to_catchment_site(self, tiny_internet, dataplane, two_site_routing):
        for block in list(tiny_internet.blocks)[:200]:
            delivered = dataplane.send_probe_fast((block << 8) | 1, 1, 0, 0.0, 0)
            expected = two_site_routing.site_of_block(block, 0)
            for reply in delivered:
                assert reply.site_code == expected

    def test_wire_and_fast_paths_equivalent(self, tiny_internet, dataplane):
        source = 0xC0000201
        for block in list(tiny_internet.blocks)[:300]:
            destination = (block << 8) | 1
            wire = dataplane.send_probe_packet(
                build_probe(source, destination, 5, 6), 10.0, 1
            )
            fast = dataplane.send_probe_fast(destination, 5, 6, 10.0, 1)
            assert wire == fast

    def test_send_reply_packet_rejected(self, dataplane):
        wire = build_reply(1, 2, 3, 4)
        with pytest.raises(MeasurementError):
            dataplane.send_probe_packet(wire, 0.0, 0)

    def test_timestamps_include_latency(self, tiny_internet, dataplane):
        for block in list(tiny_internet.blocks)[:50]:
            delivered = dataplane.send_probe_fast((block << 8) | 1, 1, 0, 100.0, 0)
            for reply in delivered:
                assert reply.timestamp > 100.0
