"""Tests for the IPv4/ICMP wire format."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PacketError
from repro.icmp.packets import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    EchoMessage,
    IPv4Header,
    build_probe,
    build_reply,
    internet_checksum,
    parse_packet,
)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_checksum_of_checksummed_is_zero(self):
        data = b"hello world"
        checksum = internet_checksum(data)
        padded = data + b"\x00"  # odd length gets padded
        combined = padded + struct.pack("!H", checksum)
        assert internet_checksum(combined) == 0

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF


class TestIPv4Header:
    def test_roundtrip(self):
        header = IPv4Header(0x0A000001, 0xC0000201, 84, ttl=17, identification=99)
        decoded = IPv4Header.decode(header.encode())
        assert decoded == header

    def test_corrupt_checksum_detected(self):
        wire = bytearray(IPv4Header(1, 2, 28).encode())
        wire[8] ^= 0xFF
        with pytest.raises(PacketError):
            IPv4Header.decode(bytes(wire))

    def test_truncated(self):
        with pytest.raises(PacketError):
            IPv4Header.decode(b"\x45\x00\x00")

    def test_wrong_version(self):
        wire = bytearray(IPv4Header(1, 2, 28).encode())
        wire[0] = 0x65
        with pytest.raises(PacketError):
            IPv4Header.decode(bytes(wire))


class TestEchoMessage:
    def test_roundtrip(self):
        message = EchoMessage(ICMP_ECHO_REQUEST, 0x1234, 7, b"payload")
        decoded = EchoMessage.decode(message.encode())
        assert decoded == message

    def test_reply_mirrors_request(self):
        request = EchoMessage(ICMP_ECHO_REQUEST, 5, 6, b"x")
        reply = request.reply()
        assert reply.is_reply
        assert reply.identifier == 5
        assert reply.sequence == 6
        assert reply.payload == b"x"

    def test_reply_of_reply_rejected(self):
        reply = EchoMessage(ICMP_ECHO_REPLY, 5, 6)
        with pytest.raises(PacketError):
            reply.reply()

    def test_corrupt_detected(self):
        wire = bytearray(EchoMessage(ICMP_ECHO_REQUEST, 1, 2).encode())
        wire[4] ^= 0x01
        with pytest.raises(PacketError):
            EchoMessage.decode(bytes(wire))

    def test_identifier_range_checked(self):
        with pytest.raises(PacketError):
            EchoMessage(ICMP_ECHO_REQUEST, 0x10000, 0).encode()
        with pytest.raises(PacketError):
            EchoMessage(ICMP_ECHO_REQUEST, 0, 0x10000).encode()

    def test_non_echo_type_rejected(self):
        wire = bytearray(EchoMessage(ICMP_ECHO_REQUEST, 1, 2).encode())
        wire[0] = 3  # destination unreachable
        # Fix up checksum so only the type check trips.
        wire[2:4] = b"\x00\x00"
        checksum = internet_checksum(bytes(wire))
        wire[2:4] = struct.pack("!H", checksum)
        with pytest.raises(PacketError):
            EchoMessage.decode(bytes(wire))

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=64),
    )
    def test_roundtrip_property(self, identifier, sequence, payload):
        message = EchoMessage(ICMP_ECHO_REQUEST, identifier, sequence, payload)
        assert EchoMessage.decode(message.encode()) == message


class TestFullPackets:
    def test_probe_roundtrip(self):
        wire = build_probe(0x0A000001, 0xC0000201, 42, 7, b"verfploeter")
        header, message = parse_packet(wire)
        assert header.source == 0x0A000001
        assert header.destination == 0xC0000201
        assert message.is_request
        assert message.identifier == 42
        assert message.payload == b"verfploeter"

    def test_reply_roundtrip(self):
        wire = build_reply(0xC0000201, 0x0A000001, 42, 7)
        header, message = parse_packet(wire)
        assert message.is_reply
        assert header.source == 0xC0000201

    def test_length_mismatch_detected(self):
        wire = build_probe(1, 2, 3, 4) + b"extra"
        with pytest.raises(PacketError):
            parse_packet(wire)

    def test_non_icmp_protocol_rejected(self):
        icmp = EchoMessage(ICMP_ECHO_REQUEST, 1, 2).encode()
        header = IPv4Header(1, 2, 20 + len(icmp), protocol=17)  # UDP
        with pytest.raises(PacketError):
            parse_packet(header.encode() + icmp)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_probe_roundtrip_property(self, source, destination, identifier, sequence):
        wire = build_probe(source, destination, identifier, sequence)
        header, message = parse_packet(wire)
        assert (header.source, header.destination) == (source, destination)
        assert (message.identifier, message.sequence) == (identifier, sequence)
