"""Tests for topology validation and figure-data export."""

from __future__ import annotations

import pytest

from repro.analysis.export import (
    export_grid,
    export_hourly_series,
    export_prefix_division_series,
    export_prepend_series,
    export_stability_series,
)
from repro.errors import TopologyError
from repro.topology.validate import validate_internet


class TestValidateInternet:
    def test_generated_topologies_are_valid(self, tiny_internet, broot_tiny,
                                            tangled_tiny):
        for internet in (tiny_internet, broot_tiny.internet,
                         tangled_tiny.internet):
            report = validate_internet(internet)
            assert report.ok, report.errors
            report.raise_if_invalid()  # must not raise

    def test_detects_missing_provider(self, tiny_internet):
        # Hand-build a broken topology: a stub with no providers.
        from repro.geo.geodb import GeoDatabase
        from repro.topology.asys import AutonomousSystem, PoP
        from repro.topology.hosts import HostModel
        from repro.topology.internet import Internet
        from repro.topology.relationships import RelationshipGraph

        pops = [PoP(0, 1, "US", 40.0, -100.0)]
        ases = {1: AutonomousSystem(1, "stub", "LONELY", "US", [0])}
        broken = Internet(
            seed=1, ases=ases, pops=pops, graph=RelationshipGraph(),
            announced=[], block_assignment={}, geodb=GeoDatabase(),
            host_model=HostModel(1),
        )
        report = validate_internet(broken)
        assert not report.ok
        assert any("no provider" in error for error in report.errors)
        assert any("no tier-1" in error for error in report.errors)
        with pytest.raises(TopologyError):
            report.raise_if_invalid()

    def test_detects_foreign_pop(self, tiny_internet):
        from repro.geo.geodb import GeoDatabase
        from repro.topology.asys import AutonomousSystem, PoP
        from repro.topology.hosts import HostModel
        from repro.topology.internet import Internet
        from repro.topology.relationships import RelationshipGraph

        graph = RelationshipGraph()
        graph.add_customer_provider(2, 1)
        pops = [PoP(0, 1, "US", 40.0, -100.0), PoP(1, 2, "US", 41.0, -99.0)]
        ases = {
            1: AutonomousSystem(1, "tier1", "T1", "US", [0]),
            2: AutonomousSystem(2, "stub", "S", "US", [1]),
        }
        broken = Internet(
            seed=1, ases=ases, pops=pops, graph=graph, announced=[],
            block_assignment={100: (2, 0)},  # block of AS2 on AS1's PoP
            geodb=GeoDatabase(), host_model=HostModel(1),
        )
        report = validate_internet(broken)
        assert any("foreign PoP" in error for error in report.errors)


class TestExport:
    def test_prepend_series(self, tmp_path, broot_tiny, broot_verfploeter):
        from repro.core.experiments import prepend_sweep

        sweep = prepend_sweep(
            broot_verfploeter, broot_tiny.atlas, configs=(("equal", {}),)
        )
        path = tmp_path / "fig5.tsv"
        export_prepend_series(sweep, "LAX", path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "config\tatlas_fraction\tverfploeter_fraction"
        assert len(lines) == 2
        fields = lines[1].split("\t")
        assert fields[0] == "equal"
        assert 0.0 <= float(fields[2]) <= 1.0

    def test_stability_series(self, tmp_path, broot_verfploeter):
        from repro.core.experiments import run_stability_series

        series = run_stability_series(broot_verfploeter, rounds=4, fast=True)
        path = tmp_path / "fig9.tsv"
        export_stability_series(series, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 3  # header + (rounds-1) transitions

    def test_hourly_series(self, tmp_path):
        import numpy as np

        hourly = {"equal": {"LAX": np.arange(24.0), "MIA": np.ones(24)}}
        path = tmp_path / "fig6.tsv"
        export_hourly_series(hourly, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert len(lines[1].split("\t")) == 26

    def test_prefix_division_series(self, tmp_path, broot_tiny, broot_scan):
        path = tmp_path / "fig8.tsv"
        export_prefix_division_series(
            broot_scan.catchment, broot_tiny.internet, path
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("prefix_length\tprefixes")
        assert len(lines) > 3
        for line in lines[1:]:
            fields = line.split("\t")
            fractions = [float(value) for value in fields[2:]]
            assert sum(fractions) == pytest.approx(1.0, abs=0.02)

    def test_grid_export(self, tmp_path, broot_tiny, broot_scan):
        from repro.analysis.maps import catchment_grid

        grid = catchment_grid(broot_scan.catchment, broot_tiny.internet.geodb)
        path = tmp_path / "fig2b.tsv"
        export_grid(grid, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "lat\tlon\tsite\tweight"
        total = sum(float(line.split("\t")[3]) for line in lines[1:])
        assert total == pytest.approx(sum(grid.site_totals().values()))
