"""Tests for /24 block helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.netaddr.blocks import (
    BLOCK_COUNT,
    block_base_address,
    block_of_address,
    block_to_prefix,
    format_block,
    parse_block,
)


class TestBlockMath:
    def test_block_of_address(self):
        assert block_of_address(0xC0000201) == 0xC00002

    def test_block_base_address(self):
        assert block_base_address(0xC00002) == 0xC0000200

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_through_base(self, address):
        block = block_of_address(address)
        assert block_base_address(block) <= address < block_base_address(block) + 256

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            block_of_address(1 << 32)
        with pytest.raises(AddressError):
            block_base_address(BLOCK_COUNT)

    def test_block_to_prefix(self):
        prefix = block_to_prefix(0xC00002)
        assert str(prefix) == "192.0.2.0/24"
        assert list(prefix.blocks()) == [0xC00002]


class TestFormatting:
    def test_format(self):
        assert format_block(0xC00002) == "192.0.2.0/24"

    def test_parse(self):
        assert parse_block("192.0.2.0/24") == 0xC00002

    def test_parse_bare_address(self):
        assert parse_block("192.0.2.0") == 0xC00002

    def test_parse_rejects_other_lengths(self):
        with pytest.raises(AddressError):
            parse_block("192.0.2.0/23")

    def test_parse_rejects_unaligned(self):
        with pytest.raises(AddressError):
            parse_block("192.0.2.5/24")

    @given(st.integers(min_value=0, max_value=BLOCK_COUNT - 1))
    def test_format_parse_roundtrip(self, block):
        assert parse_block(format_block(block)) == block
