"""Tests for the site-addition planning loop."""

from __future__ import annotations

import pytest

from repro.analysis.placement import suggest_sites
from repro.core.planning import evaluate_site_addition, find_upstream_near
from repro.errors import ConfigurationError
from repro.netaddr.prefix import Prefix


class TestFindUpstream:
    def test_returns_nearby_transit(self, broot_tiny):
        asn, country = find_upstream_near(broot_tiny.internet, 52.0, 5.0)
        asys = broot_tiny.internet.ases[asn]
        assert asys.tier in ("tier1", "transit")
        # The chosen PoP should be in or near Europe.
        pops = broot_tiny.internet.pops_of_asn(asn)
        from repro.geo.distance import haversine_km

        assert min(
            haversine_km(52.0, 5.0, pop.latitude, pop.longitude) for pop in pops
        ) < 5000

    def test_deterministic(self, broot_tiny):
        first = find_upstream_near(broot_tiny.internet, 0.0, 100.0)
        second = find_upstream_near(broot_tiny.internet, 0.0, 100.0)
        assert first == second


class TestEvaluateSiteAddition:
    @pytest.fixture(scope="class")
    def result(self, broot_tiny, broot_scan):
        suggestion = suggest_sites(
            broot_scan, broot_tiny.internet.geodb, count=1
        )[0]
        return evaluate_site_addition(
            broot_tiny, "NEW", suggestion.latitude, suggestion.longitude
        )

    def test_new_site_captures_blocks(self, result):
        assert result.captured_blocks > 0
        assert 0.0 < result.capture_fraction < 1.0

    def test_trial_has_three_sites(self, result):
        assert set(result.trial_scan.catchment.site_codes) == {
            "LAX", "MIA", "NEW"
        }
        assert set(result.baseline_scan.catchment.site_codes) == {"LAX", "MIA"}

    def test_latency_improves(self, result):
        """Placing a site where the placement analysis points must cut
        mean RTT — the suggestion targeted high-RTT regions."""
        assert result.mean_rtt_saving_ms > 0

    def test_new_site_is_fast_for_its_catchment(self, result):
        assert result.median_rtt_of_new_site_ms is not None
        assert result.median_rtt_of_new_site_ms < result.mean_rtt_before_ms

    def test_production_prefix_untouched(self, broot_tiny, result):
        assert result.trial_scan.catchment is not None
        assert broot_tiny.service.prefix == Prefix("199.9.14.0/24")

    def test_duplicate_code_rejected(self, broot_tiny):
        with pytest.raises(ConfigurationError):
            evaluate_site_addition(broot_tiny, "LAX", 0.0, 0.0)

    def test_unknown_upstream_rejected(self, broot_tiny):
        with pytest.raises(ConfigurationError):
            evaluate_site_addition(
                broot_tiny, "NEW", 0.0, 0.0, upstream_asn=999_999
            )

    def test_explicit_upstream_honoured(self, broot_tiny):
        upstream = broot_tiny.internet.find_asn_by_name("TRANSIT-0")
        result = evaluate_site_addition(
            broot_tiny, "NEW", 0.0, 0.0, upstream_asn=upstream
        )
        assert result.site.upstream_asn == upstream
