"""Tests for latency inflation and catchment containment analyses."""

from __future__ import annotations

import pytest

from repro.analysis.containment import (
    containment_report,
    country_site_matrix,
    format_containment_table,
)
from repro.analysis.inflation import (
    format_inflation_table,
    inflation_per_block,
    summarize_inflation,
)
from repro.anycast.catchment import CatchmentMap
from repro.geo.geodb import GeoDatabase, GeoRecord
from repro.icmp.latency import LatencyModel


@pytest.fixture(scope="module")
def latency(broot_tiny):
    return LatencyModel(broot_tiny.internet, broot_tiny.service)


class TestInflation:
    def test_per_block_structure(self, broot_scan, latency):
        per_block = inflation_per_block(broot_scan, latency)
        assert per_block
        for block, (measured, best, best_site) in per_block.items():
            assert measured > 0
            assert best > 0
            assert best_site in ("LAX", "MIA")
            # The optimal is by construction no worse than any site's
            # RTT, including the serving site's nominal RTT.
            serving = broot_scan.catchment.site_of(block)
            serving_rtt = latency.rtt_ms(block, serving, broot_scan.round_id)
            if serving_rtt is not None:
                assert best <= serving_rtt + 1e-9

    def test_summary_invariants(self, broot_scan, latency):
        summary = summarize_inflation(broot_scan, latency)
        assert 0 < summary.blocks <= broot_scan.mapped_blocks
        assert 0.0 <= summary.optimal_fraction <= 1.0
        assert summary.median_ms <= summary.p90_ms <= summary.worst_ms
        assert summary.mean_optimal_ms <= summary.mean_measured_ms + 1e-9

    def test_some_blocks_inflated(self, broot_scan, latency):
        """BGP is not latency-optimal: a real share of blocks is inflated."""
        summary = summarize_inflation(broot_scan, latency)
        assert summary.optimal_fraction < 1.0
        assert summary.worst_ms > 0.0

    def test_formatting(self, broot_scan, latency):
        text = format_inflation_table(summarize_inflation(broot_scan, latency))
        assert "latency inflation" in text

    def test_empty_scan(self, broot_scan, latency):
        from dataclasses import replace

        empty = replace(broot_scan, rtts={})
        assert inflation_per_block(empty, latency) == {}
        assert summarize_inflation(empty, latency).blocks == 0


def _toy_world():
    geodb = GeoDatabase()
    # Blocks 1-4 in CN, 5-6 in US, 7 unlocatable.
    for block in (1, 2, 3, 4):
        geodb.add(block, GeoRecord("CN", 30.0, 100.0))
    for block in (5, 6):
        geodb.add(block, GeoRecord("US", 40.0, -100.0))
    catchment = CatchmentMap(
        ["BEIJING", "OTHER"],
        {1: "BEIJING", 2: "BEIJING", 3: "OTHER", 4: "BEIJING",
         5: "BEIJING", 6: "OTHER", 7: "BEIJING"},
    )
    return catchment, geodb


class TestContainment:
    def test_counts(self):
        catchment, geodb = _toy_world()
        report = containment_report(catchment, geodb, "BEIJING", "CN")
        assert report.inside_at_site == 3    # blocks 1, 2, 4
        assert report.inside_elsewhere == 1  # block 3
        assert report.outside_at_site == 1   # block 5 (US served by BEIJING)

    def test_fractions(self):
        catchment, geodb = _toy_world()
        report = containment_report(catchment, geodb, "BEIJING", "CN")
        assert report.containment_fraction == pytest.approx(3 / 4)
        assert report.leakage_fraction == pytest.approx(1 / 4)

    def test_unlocatable_blocks_ignored(self):
        catchment, geodb = _toy_world()
        report = containment_report(catchment, geodb, "BEIJING", "CN")
        total = (
            report.inside_at_site + report.inside_elsewhere + report.outside_at_site
        )
        assert total == 5  # block 7 has no geolocation

    def test_country_site_matrix(self):
        catchment, geodb = _toy_world()
        matrix = country_site_matrix(catchment, geodb, "CN")
        assert matrix == {"BEIJING": 3, "OTHER": 1}

    def test_on_real_scenario(self, broot_tiny, broot_scan):
        """MIA (AMPATH) is relatively stronger in Brazil than in the US
        (paper §5.1: AMPATH is "very well connected in Brazil")."""
        geodb = broot_tiny.internet.geodb
        brazil = country_site_matrix(broot_scan.catchment, geodb, "BR")
        states = country_site_matrix(broot_scan.catchment, geodb, "US")
        if sum(brazil.values()) < 10 or sum(states.values()) < 10:
            pytest.skip("too few blocks per country at tiny scale")
        mia_share_br = brazil.get("MIA", 0) / sum(brazil.values())
        mia_share_us = states.get("MIA", 0) / sum(states.values())
        assert mia_share_br > mia_share_us - 0.15

    def test_formatting(self):
        catchment, geodb = _toy_world()
        report = containment_report(catchment, geodb, "BEIJING", "CN")
        text = format_containment_table([report])
        assert "leakage" in text
        assert "BEIJING" in text
