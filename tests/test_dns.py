"""Tests for the DNS wire format and the site-identity server."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.message import (
    CLASS_CHAOS,
    CLASS_IN,
    TYPE_OPT,
    TYPE_TXT,
    DnsMessage,
    DnsQuestion,
    DnsRecord,
    decode_name,
    encode_name,
)
from repro.dns.server import SiteIdentityServer
from repro.errors import DNSError

_LABEL = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=20,
).filter(lambda label: not label.startswith("-"))


class TestNames:
    def test_encode_simple(self):
        assert encode_name("a.bc") == b"\x01a\x02bc\x00"

    def test_root(self):
        assert encode_name(".") == b"\x00"
        assert encode_name("") == b"\x00"

    def test_trailing_dot_ignored(self):
        assert encode_name("a.bc.") == encode_name("a.bc")

    def test_rejects_long_label(self):
        with pytest.raises(DNSError):
            encode_name("x" * 64)

    def test_rejects_empty_label(self):
        with pytest.raises(DNSError):
            encode_name("a..b")

    @given(st.lists(_LABEL, min_size=1, max_size=5))
    def test_roundtrip(self, labels):
        name = ".".join(labels)
        wire = encode_name(name)
        decoded, offset = decode_name(wire, 0)
        assert decoded == name
        assert offset == len(wire)

    def test_compression_pointer(self):
        # "example" at offset 0, then a pointer to it prefixed by "www".
        base = encode_name("example")
        pointer = b"\x03www" + bytes([0xC0, 0x00])
        data = base + pointer
        decoded, offset = decode_name(data, len(base))
        assert decoded == "www.example"
        assert offset == len(data)

    def test_pointer_loop_detected(self):
        data = bytes([0xC0, 0x00])
        with pytest.raises(DNSError):
            decode_name(data, 0)

    def test_truncated_name(self):
        with pytest.raises(DNSError):
            decode_name(b"\x05ab", 0)


class TestRecords:
    def test_txt_roundtrip(self):
        record = DnsRecord.txt("hostname.bind", "lax1.b.example")
        assert record.txt_strings() == ["lax1.b.example"]

    def test_txt_too_long(self):
        with pytest.raises(DNSError):
            DnsRecord.txt("x", "y" * 256)

    def test_txt_strings_on_non_txt(self):
        record = DnsRecord.nsid_opt(b"x")
        with pytest.raises(DNSError):
            record.txt_strings()

    def test_nsid_roundtrip(self):
        record = DnsRecord.nsid_opt(b"site-7")
        assert record.nsid_value() == b"site-7"

    def test_nsid_absent(self):
        record = DnsRecord("", TYPE_OPT, 4096, 0, b"")
        assert record.nsid_value() is None


class TestMessages:
    def test_query_roundtrip(self):
        query = DnsMessage.query(0x1234, "hostname.bind")
        decoded = DnsMessage.decode(query.encode())
        assert decoded.message_id == 0x1234
        assert not decoded.is_response
        assert decoded.questions == [
            DnsQuestion("hostname.bind", TYPE_TXT, CLASS_CHAOS)
        ]

    def test_response_roundtrip(self):
        message = DnsMessage(
            message_id=7,
            is_response=True,
            authoritative=True,
            answers=[DnsRecord.txt("hostname.bind", "abc")],
        )
        decoded = DnsMessage.decode(message.encode())
        assert decoded.is_response
        assert decoded.authoritative
        assert decoded.answers[0].txt_strings() == ["abc"]

    def test_query_with_nsid(self):
        query = DnsMessage.query(1, "hostname.bind", request_nsid=True)
        decoded = DnsMessage.decode(query.encode())
        assert any(record.rtype == TYPE_OPT for record in decoded.additionals)

    def test_truncated_rejected(self):
        with pytest.raises(DNSError):
            DnsMessage.decode(b"\x00\x01\x00")

    def test_rcode_preserved(self):
        message = DnsMessage(message_id=1, is_response=True, rcode=5)
        assert DnsMessage.decode(message.encode()).rcode == 5


class TestSiteIdentityServer:
    def make_query(self, name="hostname.bind", qclass=CLASS_CHAOS, qtype=TYPE_TXT):
        return DnsMessage.query(42, name, qtype=qtype, qclass=qclass)

    def test_answers_hostname_bind(self):
        server = SiteIdentityServer("LAX", "B.root-servers.net")
        response = server.handle(self.make_query())
        assert response.rcode == 0
        assert response.answers[0].txt_strings() == ["lax1.b.root-servers.net"]
        assert response.authoritative

    def test_answers_id_server(self):
        server = SiteIdentityServer("MIA", "B.root-servers.net")
        response = server.handle(self.make_query("id.server"))
        assert response.answers[0].txt_strings()[0].startswith("mia1.")

    def test_refuses_class_in(self):
        server = SiteIdentityServer("LAX", "svc")
        response = server.handle(self.make_query(qclass=CLASS_IN))
        assert response.rcode == 5
        assert not response.answers

    def test_refuses_other_names(self):
        server = SiteIdentityServer("LAX", "svc")
        response = server.handle(self.make_query("version.bind"))
        assert response.rcode == 5

    def test_refuses_empty_question(self):
        server = SiteIdentityServer("LAX", "svc")
        response = server.handle(DnsMessage(message_id=1))
        assert response.rcode == 5

    def test_nsid_echoed(self):
        server = SiteIdentityServer("LAX", "svc")
        query = DnsMessage.query(1, "hostname.bind", request_nsid=True)
        response = server.handle(query)
        opt = [r for r in response.additionals if r.rtype == TYPE_OPT]
        assert opt and opt[0].nsid_value() == b"lax1.svc"

    def test_message_id_mirrored(self):
        server = SiteIdentityServer("LAX", "svc")
        assert server.handle(self.make_query()).message_id == 42

    def test_wire_roundtrip_through_server(self):
        server = SiteIdentityServer("CDG", "tangled.example.net")
        query_wire = self.make_query().encode()
        response = server.handle(DnsMessage.decode(query_wire))
        decoded = DnsMessage.decode(response.encode())
        assert decoded.answers[0].txt_strings() == ["cdg1.tangled.example.net"]
