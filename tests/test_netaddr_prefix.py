"""Tests for CIDR prefixes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.netaddr.prefix import Prefix


def aligned_prefixes():
    """Strategy: valid prefixes with host bits clear."""
    return st.integers(min_value=0, max_value=32).flatmap(
        lambda length: st.integers(
            min_value=0, max_value=(1 << length) - 1 if length else 0
        ).map(lambda top: Prefix((top << (32 - length)) & 0xFFFFFFFF, length))
    )


class TestConstruction:
    def test_from_cidr_string(self):
        prefix = Prefix("192.0.2.0/24")
        assert prefix.network == 0xC0000200
        assert prefix.length == 24

    def test_from_network_and_length(self):
        assert str(Prefix(0xC0000200, 24)) == "192.0.2.0/24"

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix("192.0.2.1/24")

    def test_bad_length(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0/33")
        with pytest.raises(AddressError):
            Prefix(0, -1)

    def test_missing_length(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0")

    def test_zero_length(self):
        assert Prefix("0.0.0.0/0").size == 1 << 32


class TestProperties:
    def test_netmask(self):
        assert Prefix("10.0.0.0/8").netmask == 0xFF000000
        assert Prefix("0.0.0.0/0").netmask == 0

    def test_broadcast(self):
        assert Prefix("192.0.2.0/24").broadcast == 0xC00002FF

    def test_size(self):
        assert Prefix("192.0.2.0/24").size == 256
        assert Prefix("10.0.0.0/8").size == 1 << 24

    def test_block_count(self):
        assert Prefix("192.0.2.0/24").block_count == 1
        assert Prefix("10.0.0.0/16").block_count == 256
        assert Prefix("192.0.2.128/25").block_count == 0

    def test_blocks_iteration(self):
        blocks = list(Prefix("10.0.0.0/22").blocks())
        assert len(blocks) == 4
        assert blocks[0] == 0x0A0000
        assert blocks[-1] == 0x0A0003

    def test_blocks_empty_for_long_prefix(self):
        assert list(Prefix("10.0.0.128/25").blocks()) == []


class TestContainment:
    def test_contains_address(self):
        prefix = Prefix("192.0.2.0/24")
        assert prefix.contains_address(0xC0000280)
        assert not prefix.contains_address(0xC0000380)

    def test_contains_prefix(self):
        assert Prefix("10.0.0.0/8").contains_prefix(Prefix("10.1.0.0/16"))
        assert not Prefix("10.1.0.0/16").contains_prefix(Prefix("10.0.0.0/8"))
        assert Prefix("10.0.0.0/8").contains_prefix(Prefix("10.0.0.0/8"))

    def test_overlaps(self):
        assert Prefix("10.0.0.0/8").overlaps(Prefix("10.1.0.0/16"))
        assert Prefix("10.1.0.0/16").overlaps(Prefix("10.0.0.0/8"))
        assert not Prefix("10.0.0.0/8").overlaps(Prefix("11.0.0.0/8"))

    @given(aligned_prefixes())
    def test_contains_own_network_and_broadcast(self, prefix):
        assert prefix.contains_address(prefix.network)
        assert prefix.contains_address(prefix.broadcast)


class TestSubnetting:
    def test_subnets(self):
        children = list(Prefix("10.0.0.0/8").subnets(10))
        assert len(children) == 4
        assert children[0] == Prefix("10.0.0.0/10")
        assert children[-1] == Prefix("10.192.0.0/10")

    def test_subnets_same_length(self):
        assert list(Prefix("10.0.0.0/8").subnets(8)) == [Prefix("10.0.0.0/8")]

    def test_subnets_shorter_rejected(self):
        with pytest.raises(AddressError):
            list(Prefix("10.0.0.0/8").subnets(7))

    def test_supernet(self):
        assert Prefix("10.128.0.0/9").supernet() == Prefix("10.0.0.0/8")

    def test_supernet_of_default_rejected(self):
        with pytest.raises(AddressError):
            Prefix("0.0.0.0/0").supernet()

    @given(aligned_prefixes().filter(lambda p: p.length > 0))
    def test_supernet_contains_child(self, prefix):
        assert prefix.supernet().contains_prefix(prefix)


class TestOrderingAndHash:
    def test_sort_order(self):
        prefixes = [Prefix("10.0.0.0/16"), Prefix("10.0.0.0/8"), Prefix("9.0.0.0/8")]
        ordered = sorted(prefixes)
        assert ordered[0] == Prefix("9.0.0.0/8")
        assert ordered[1] == Prefix("10.0.0.0/8")

    def test_hashable(self):
        assert len({Prefix("10.0.0.0/8"), Prefix("10.0.0.0/8")}) == 1

    @given(aligned_prefixes())
    def test_string_roundtrip(self, prefix):
        assert Prefix(str(prefix)) == prefix
