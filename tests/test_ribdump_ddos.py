"""Tests for the RIB dump and attack-absorption analysis."""

from __future__ import annotations

import io

import pytest

from repro.bgp.ribdump import read_rib_dump, write_rib_dump
from repro.core.experiments import attack_absorption
from repro.errors import DatasetError


class TestRibDump:
    @pytest.fixture(scope="class")
    def lookup(self, tiny_internet):
        buffer = io.StringIO()
        write_rib_dump(tiny_internet, buffer)
        buffer.seek(0)
        return read_rib_dump(buffer)

    def test_every_announced_prefix_present(self, tiny_internet, lookup):
        assert len(lookup) == len(tiny_internet.announced)

    def test_origin_matches_topology(self, tiny_internet, lookup):
        for block in list(tiny_internet.blocks)[:300]:
            assert lookup.origin_of_block(block) == tiny_internet.asn_of_block(block)

    def test_unrouted_space_unmapped(self, lookup):
        assert lookup.origin_of_address(0xDEADBEEF) is None
        assert lookup.origin_of_block(0xFFFFFF) is None

    def test_prefix_of_address(self, tiny_internet, lookup):
        block = list(tiny_internet.blocks)[0]
        prefix = lookup.prefix_of_address(block << 8)
        assert prefix is not None
        assert prefix.contains_address(block << 8)

    def test_rejects_malformed_lines(self):
        with pytest.raises(DatasetError):
            read_rib_dump(io.StringIO("10.0.0.0/8\n"))
        with pytest.raises(DatasetError):
            read_rib_dump(io.StringIO("10.0.0.0/8 notanasn\n"))

    def test_rejects_empty_dump(self):
        with pytest.raises(DatasetError):
            read_rib_dump(io.StringIO("# prefix origin-as\n"))

    def test_comments_and_blanks_ignored(self):
        lookup = read_rib_dump(io.StringIO("# header\n\n10.0.0.0/8 65000\n"))
        assert lookup.origin_of_address(0x0A000001) == 65000


class TestAttackAbsorption:
    def test_shares_sum_to_one(self, tiny_internet, two_site_routing):
        attackers = list(tiny_internet.blocks)[:200]
        absorption = attack_absorption(two_site_routing, attackers)
        assert sum(absorption.share.values()) == pytest.approx(1.0)
        assert absorption.attacker_blocks == 200
        assert absorption.unmapped == 0

    def test_unmapped_attackers_counted(self, two_site_routing):
        absorption = attack_absorption(two_site_routing, [0xFFFFFF, 0xFFFFFE])
        assert absorption.unmapped == 2
        assert sum(absorption.share.values()) == 0.0

    def test_matches_catchment(self, tiny_internet, two_site_routing):
        attackers = list(tiny_internet.blocks)[:100]
        absorption = attack_absorption(two_site_routing, attackers)
        expected_a = sum(
            1 for b in attackers if two_site_routing.site_of_block(b) == "A"
        )
        assert absorption.share["A"] == pytest.approx(expected_a / 100)

    def test_regional_attack_is_skewed(self, broot_tiny, broot_routing):
        """A single-country botnet concentrates on few sites."""
        cn_blocks = [
            block for block in broot_tiny.internet.blocks
            if broot_tiny.internet.country_of_block(block) == "CN"
        ]
        if len(cn_blocks) < 20:
            pytest.skip("too few CN blocks at tiny scale")
        absorption = attack_absorption(broot_routing, cn_blocks)
        _, hottest = absorption.hottest_site()
        assert hottest > 0.5

    def test_round_aware(self, broot_tiny, broot_routing):
        attackers = list(broot_tiny.internet.blocks)
        first = attack_absorption(broot_routing, attackers, round_id=1)
        second = attack_absorption(broot_routing, attackers, round_id=2)
        # Flips shift a tiny fraction between rounds.
        assert abs(first.share["LAX"] - second.share["LAX"]) < 0.05


class TestPathDump:
    def test_roundtrip(self, tiny_internet, two_site_routing):
        import io

        from repro.bgp.ribdump import read_path_dump, write_path_dump

        buffer = io.StringIO()
        write_path_dump(two_site_routing, buffer)
        buffer.seek(0)
        paths = read_path_dump(buffer)
        assert len(paths) == len(two_site_routing.selections)
        for asn, hops in paths.items():
            assert tuple(hops) == two_site_routing.selection_of(asn).as_path

    def test_rejects_garbage(self):
        import io

        from repro.bgp.ribdump import read_path_dump

        with pytest.raises(DatasetError):
            read_path_dump(io.StringIO("# only a header\n"))
        with pytest.raises(DatasetError):
            read_path_dump(io.StringIO("notanasn: 1 2 3\n"))
