"""Tests for the host responsiveness model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.topology.hosts import HostModel, HostModelConfig


@pytest.fixture(scope="module")
def model():
    return HostModel(seed=123)


BLOCKS = range(4000)


class TestStableResponders:
    def test_deterministic(self, model):
        for block in range(50):
            assert model.is_stable_responder(block) == model.is_stable_responder(block)

    def test_global_rate_near_55_percent(self, model):
        rate = sum(model.is_stable_responder(b) for b in BLOCKS) / len(BLOCKS)
        assert 0.50 < rate < 0.60

    def test_country_override_lowers_rate(self, model):
        kr_rate = sum(model.is_stable_responder(b, "KR") for b in BLOCKS) / len(BLOCKS)
        assert kr_rate < 0.20

    def test_unknown_country_uses_base(self, model):
        assert model.responsiveness_for("FR") == model.config.base_responsiveness

    def test_none_country_uses_base(self, model):
        assert model.responsiveness_for(None) == model.config.base_responsiveness


class TestChurn:
    def test_nonresponder_never_responds(self, model):
        nonresponders = [b for b in BLOCKS if not model.is_stable_responder(b)][:50]
        for block in nonresponders:
            for round_id in range(5):
                assert not model.responds_in_round(block, round_id)

    def test_churn_rate(self, model):
        responders = [b for b in BLOCKS if model.is_stable_responder(b)]
        silent = sum(
            not model.responds_in_round(b, round_id=3) for b in responders
        ) / len(responders)
        assert 0.01 < silent < 0.05

    def test_churn_varies_by_round(self, model):
        responders = [b for b in BLOCKS if model.is_stable_responder(b)]
        round_a = {b for b in responders if model.responds_in_round(b, 1)}
        round_b = {b for b in responders if model.responds_in_round(b, 2)}
        assert round_a != round_b
        # But the overwhelming majority is stable.
        assert len(round_a & round_b) > 0.9 * len(responders)


class TestDuplicates:
    def test_reply_count_at_least_one(self, model):
        for block in range(300):
            assert model.reply_count(block, 0) >= 1

    def test_duplicate_rate_small(self, model):
        extra = sum(model.reply_count(b, 0) - 1 for b in BLOCKS)
        # ~2% of replies should be duplicates (paper §4).
        assert 0.005 < extra / len(BLOCKS) < 0.08

    def test_heavy_tail_capped(self, model):
        assert all(
            model.reply_count(b, 0) <= model.config.max_duplicates for b in BLOCKS
        )


class TestOffAddressAndLatency:
    def test_off_address_rate(self, model):
        rate = sum(model.replies_from_other_address(b) for b in BLOCKS) / len(BLOCKS)
        assert 0.001 < rate < 0.02

    def test_latency_normal_range(self, model):
        normal = [
            model.reply_latency_ms(b, 0)
            for b in range(500)
            if not model.is_late_replier(b, 0)
        ]
        assert all(10.0 <= value <= 400.0 for value in normal)

    def test_late_replier_exceeds_cutoff(self, model):
        late = [b for b in BLOCKS if model.is_late_replier(b, 0)]
        assert late, "expected some late repliers in 4000 blocks"
        for block in late[:20]:
            assert model.reply_latency_ms(block, 0) > model.config.late_threshold_ms


class TestConfigValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            HostModelConfig(base_responsiveness=1.5)

    def test_rejects_bad_duplicates(self):
        with pytest.raises(ConfigurationError):
            HostModelConfig(max_duplicates=1)

    def test_rejects_bad_heavy_fraction(self):
        with pytest.raises(ConfigurationError):
            HostModelConfig(heavy_duplicate_fraction=0.0)
