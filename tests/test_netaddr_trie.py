"""Tests for the longest-prefix-match trie."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netaddr.prefix import Prefix
from repro.netaddr.trie import LongestPrefixTrie


def make_trie(entries):
    trie = LongestPrefixTrie()
    for prefix_text, value in entries:
        trie.insert(Prefix(prefix_text), value)
    return trie


class TestBasics:
    def test_empty_lookup(self):
        assert LongestPrefixTrie().lookup(0x01020304) is None

    def test_exact_match(self):
        trie = make_trie([("10.0.0.0/8", "a")])
        assert trie.exact(Prefix("10.0.0.0/8")) == "a"
        assert trie.exact(Prefix("10.0.0.0/16")) is None

    def test_contains(self):
        trie = make_trie([("10.0.0.0/8", "a")])
        assert Prefix("10.0.0.0/8") in trie
        assert Prefix("11.0.0.0/8") not in trie

    def test_len_counts_values(self):
        trie = make_trie([("10.0.0.0/8", "a"), ("10.0.0.0/16", "b")])
        assert len(trie) == 2

    def test_replace_does_not_grow(self):
        trie = make_trie([("10.0.0.0/8", "a")])
        trie.insert(Prefix("10.0.0.0/8"), "b")
        assert len(trie) == 1
        assert trie.exact(Prefix("10.0.0.0/8")) == "b"

    def test_remove(self):
        trie = make_trie([("10.0.0.0/8", "a")])
        assert trie.remove(Prefix("10.0.0.0/8"))
        assert not trie.remove(Prefix("10.0.0.0/8"))
        assert trie.lookup(0x0A000001) is None


class TestLongestPrefixMatch:
    def test_prefers_longest(self):
        trie = make_trie([("10.0.0.0/8", "short"), ("10.1.0.0/16", "long")])
        match = trie.lookup(0x0A010101)
        assert match == (Prefix("10.1.0.0/16"), "long")

    def test_falls_back_to_shorter(self):
        trie = make_trie([("10.0.0.0/8", "short"), ("10.1.0.0/16", "long")])
        assert trie.lookup(0x0A020101) == (Prefix("10.0.0.0/8"), "short")

    def test_default_route(self):
        trie = make_trie([("0.0.0.0/0", "default"), ("10.0.0.0/8", "ten")])
        assert trie.lookup_value(0x0B000001) == "default"
        assert trie.lookup_value(0x0A000001) == "ten"

    def test_host_route(self):
        trie = make_trie([("192.0.2.1/32", "host")])
        assert trie.lookup_value(0xC0000201) == "host"
        assert trie.lookup_value(0xC0000202) is None

    def test_items_ordered(self):
        trie = make_trie(
            [("10.1.0.0/16", 2), ("9.0.0.0/8", 1), ("10.1.0.0/24", 3)]
        )
        assert [str(p) for p, _ in trie.items()] == [
            "9.0.0.0/8",
            "10.1.0.0/16",
            "10.1.0.0/24",
        ]


@st.composite
def disjoint_24s(draw):
    blocks = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 24) - 1),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    return [Prefix(block << 8, 24) for block in blocks]


class TestProperties:
    @settings(max_examples=50)
    @given(disjoint_24s())
    def test_lookup_matches_linear_scan(self, prefixes):
        trie = LongestPrefixTrie()
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        for index, prefix in enumerate(prefixes):
            probe = prefix.network + 17
            assert trie.lookup(probe) == (prefix, index)

    @settings(max_examples=50)
    @given(disjoint_24s())
    def test_to_dict_preserves_everything(self, prefixes):
        trie = LongestPrefixTrie()
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        snapshot = trie.to_dict()
        assert len(snapshot) == len(prefixes)
        for index, prefix in enumerate(prefixes):
            assert snapshot[prefix] == index
