"""Tests for the vectorised scan engine: bit-exact equivalence."""

from __future__ import annotations

import math

import pytest

from repro.core.experiments import run_stability_series
from repro.core.fastscan import FastScanEngine, _VectorPermutation
from repro.probing.order import PseudorandomOrder


@pytest.fixture(scope="module")
def engine(broot_verfploeter, broot_routing):
    return FastScanEngine(broot_verfploeter, broot_routing)


class TestVectorPermutation:
    @pytest.mark.parametrize("n,seed", [(1, 5), (7, 1), (100, 42), (4096, 9)])
    def test_matches_scalar_order(self, n, seed):
        scalar = list(PseudorandomOrder(n, seed))
        vector = _VectorPermutation(n, seed).permutation().tolist()
        assert vector == scalar

    def test_is_permutation(self):
        values = _VectorPermutation(1000, 3).permutation()
        assert sorted(values.tolist()) == list(range(1000))


class TestEquivalence:
    @pytest.mark.parametrize("round_id", [0, 1, 7])
    def test_catchment_stats_rtts_identical(
        self, broot_verfploeter, broot_routing, engine, round_id
    ):
        scalar = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=round_id, wire_level=False
        )
        fast = engine.run_scan(round_id=round_id)
        assert dict(fast.catchment.items()) == dict(scalar.catchment.items())
        assert fast.stats == scalar.stats
        assert set(fast.rtts) == set(scalar.rtts)
        for block, rtt in scalar.rtts.items():
            assert math.isclose(fast.rtts[block], rtt, rel_tol=1e-9)

    def test_series_metadata(self, engine):
        scans = engine.run_series(rounds=3, interval_seconds=100.0)
        assert [scan.round_id for scan in scans] == [0, 1, 2]
        assert [scan.start_time for scan in scans] == [0.0, 100.0, 200.0]

    def test_stability_series_fast_equals_slow(self, broot_verfploeter):
        slow = run_stability_series(broot_verfploeter, rounds=4, fast=False)
        fast = run_stability_series(broot_verfploeter, rounds=4, fast=True)
        assert len(slow.rounds) == len(fast.rounds)
        for a, b in zip(slow.rounds, fast.rounds):
            assert (a.stable, a.flipped, a.to_nr, a.from_nr) == (
                b.stable, b.flipped, b.to_nr, b.from_nr
            )
        assert slow.flip_counts == fast.flip_counts

    def test_wire_level_also_agrees(self, broot_verfploeter, broot_routing, engine):
        """Transitivity check: wire == scalar-fast == vectorised."""
        wire = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=2, wire_level=True
        )
        fast = engine.run_scan(round_id=2)
        assert dict(wire.catchment.items()) == dict(fast.catchment.items())
        assert wire.stats == fast.stats
