"""Tests for the vectorised scan engine: bit-exact equivalence."""

from __future__ import annotations

import math

import pytest

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentMap
from repro.collector.results import BlockValueMap
from repro.core.experiments import run_stability_series
from repro.core.fastscan import FastScanEngine, _VectorPermutation
from repro.probing.order import PseudorandomOrder


@pytest.fixture(scope="module")
def engine(broot_verfploeter, broot_routing):
    return FastScanEngine(broot_verfploeter, broot_routing)


class TestVectorPermutation:
    @pytest.mark.parametrize("n,seed", [(1, 5), (7, 1), (100, 42), (4096, 9)])
    def test_matches_scalar_order(self, n, seed):
        scalar = list(PseudorandomOrder(n, seed))
        vector = _VectorPermutation(n, seed).permutation().tolist()
        assert vector == scalar

    def test_is_permutation(self):
        values = _VectorPermutation(1000, 3).permutation()
        assert sorted(values.tolist()) == list(range(1000))


class TestEquivalence:
    @pytest.mark.parametrize("round_id", [0, 1, 7])
    def test_catchment_stats_rtts_identical(
        self, broot_verfploeter, broot_routing, engine, round_id
    ):
        scalar = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=round_id, wire_level=False
        )
        fast = engine.run_scan(round_id=round_id)
        assert dict(fast.catchment.items()) == dict(scalar.catchment.items())
        assert fast.stats == scalar.stats
        assert set(fast.rtts) == set(scalar.rtts)
        for block, rtt in scalar.rtts.items():
            assert math.isclose(fast.rtts[block], rtt, rel_tol=1e-9)

    def test_series_metadata(self, engine):
        scans = engine.run_series(rounds=3, interval_seconds=100.0)
        assert [scan.round_id for scan in scans] == [0, 1, 2]
        assert [scan.start_time for scan in scans] == [0.0, 100.0, 200.0]

    def test_stability_series_fast_equals_slow(self, broot_verfploeter):
        slow = run_stability_series(broot_verfploeter, rounds=4, fast=False)
        fast = run_stability_series(broot_verfploeter, rounds=4, fast=True)
        assert len(slow.rounds) == len(fast.rounds)
        for a, b in zip(slow.rounds, fast.rounds):
            assert (a.stable, a.flipped, a.to_nr, a.from_nr) == (
                b.stable, b.flipped, b.to_nr, b.from_nr
            )
        assert slow.flip_counts == fast.flip_counts

    def test_wire_level_also_agrees(self, broot_verfploeter, broot_routing, engine):
        """Transitivity check: wire == scalar-fast == vectorised."""
        wire = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=2, wire_level=True
        )
        fast = engine.run_scan(round_id=2)
        assert dict(wire.catchment.items()) == dict(fast.catchment.items())
        assert wire.stats == fast.stats


class TestColumnarResults:
    def test_columnar_flag_flips_result_types(
        self, broot_verfploeter, broot_routing, engine
    ):
        dict_engine = FastScanEngine(
            broot_verfploeter, broot_routing, columnar=False
        )
        fast = engine.run_scan(round_id=3)
        reference = dict_engine.run_scan(round_id=3)
        assert isinstance(fast.catchment, ArrayCatchmentMap)
        assert isinstance(fast.rtts, BlockValueMap)
        assert isinstance(reference.catchment, CatchmentMap)
        assert not isinstance(reference.catchment, ArrayCatchmentMap)
        assert isinstance(reference.rtts, dict)

    def test_columnar_equals_dict_engine_exactly(
        self, broot_verfploeter, broot_routing, engine
    ):
        dict_engine = FastScanEngine(
            broot_verfploeter, broot_routing, columnar=False
        )
        for round_id in (0, 5):
            fast = engine.run_scan(round_id=round_id)
            reference = dict_engine.run_scan(round_id=round_id)
            assert fast.stats == reference.stats
            assert dict(fast.catchment.items()) == dict(
                reference.catchment.items()
            )
            assert dict(fast.rtts.items()) == reference.rtts

    def test_series_shares_one_universe(self, engine):
        scans = engine.run_series(rounds=3)
        universes = [scan.catchment.universe for scan in scans]
        assert all(universe is universes[0] for universe in universes)

    def test_parallel_series_equals_serial(self, engine):
        serial = engine.run_series(rounds=4, interval_seconds=50.0)
        threaded = engine.run_series(rounds=4, interval_seconds=50.0, parallel=4)
        assert [scan.dataset_id for scan in threaded] == [
            scan.dataset_id for scan in serial
        ]
        for a, b in zip(serial, threaded):
            assert a.stats == b.stats
            assert dict(a.catchment.items()) == dict(b.catchment.items())
            assert dict(a.rtts.items()) == dict(b.rtts.items())

    def test_parallel_stability_series_equals_serial(self, broot_verfploeter):
        serial = run_stability_series(broot_verfploeter, rounds=4, fast=True)
        threaded = run_stability_series(
            broot_verfploeter, rounds=4, fast=True, parallel=4
        )
        assert serial.flip_counts == threaded.flip_counts
        assert serial.rounds == threaded.rounds

    def test_median_rtt_fast_path_agrees(self, broot_verfploeter, engine):
        fast = engine.run_scan(round_id=1)
        reference_rtts = dict(fast.rtts.items())
        reference_catchment = fast.catchment.to_reference()
        for code in broot_verfploeter.service.site_codes:
            expected_values = sorted(
                rtt
                for block, rtt in reference_rtts.items()
                if reference_catchment.site_of(block) == code
            )
            expected = (
                expected_values[len(expected_values) // 2]
                if expected_values
                else None
            )
            assert fast.median_rtt_of_site(code) == expected
        assert fast.median_rtt_of_site("NOPE") is None

    def test_fast_engine_convenience(self, broot_verfploeter, broot_routing):
        engine = broot_verfploeter.fast_engine(routing=broot_routing)
        assert isinstance(engine, FastScanEngine)
        assert engine.columnar
        reference = broot_verfploeter.fast_engine(
            routing=broot_routing, columnar=False
        )
        assert not reference.columnar
