"""Tests for the map figures (2-4)."""

from __future__ import annotations

import pytest

from repro.analysis.maps import (
    atlas_grid,
    catchment_grid,
    grid_site_summary,
    load_grid,
    render_ascii_map,
    server_load_grid,
)
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN


@pytest.fixture(scope="module")
def estimate(broot_tiny):
    return LoadEstimate(broot_tiny.day_load("2017-04-12"))


class TestCatchmentGrid:
    def test_covers_geolocated_blocks(self, broot_tiny, broot_scan):
        grid = catchment_grid(broot_scan.catchment, broot_tiny.internet.geodb)
        total = sum(grid.site_totals().values())
        geolocated = sum(
            1 for block in broot_scan.catchment.blocks()
            if block in broot_tiny.internet.geodb
        )
        assert total == geolocated

    def test_only_service_sites(self, broot_tiny, broot_scan):
        grid = catchment_grid(broot_scan.catchment, broot_tiny.internet.geodb)
        assert set(grid.site_totals()) <= {"LAX", "MIA"}


class TestAtlasGrid:
    def test_counts_vps(self, broot_tiny, broot_routing):
        measurement = broot_tiny.atlas.measure(broot_routing, broot_tiny.service)
        grid = atlas_grid(measurement)
        assert sum(grid.site_totals().values()) == measurement.responding_vps

    def test_far_sparser_than_verfploeter(self, broot_tiny, broot_routing, broot_scan):
        measurement = broot_tiny.atlas.measure(broot_routing, broot_tiny.service)
        atlas_cells = len(atlas_grid(measurement))
        verf_cells = len(
            catchment_grid(broot_scan.catchment, broot_tiny.internet.geodb)
        )
        assert verf_cells > 2 * atlas_cells


class TestLoadGrid:
    def test_weights_are_load(self, broot_tiny, broot_scan, estimate):
        grid = load_grid(broot_scan.catchment, estimate, broot_tiny.internet.geodb)
        geolocated_total = sum(
            estimate.of_block(int(block))
            for block in estimate.blocks
            if int(block) in broot_tiny.internet.geodb
        )
        assert sum(grid.site_totals().values()) == pytest.approx(geolocated_total)

    def test_unknown_bucket_present(self, broot_tiny, broot_scan, estimate):
        grid = load_grid(broot_scan.catchment, estimate, broot_tiny.internet.geodb)
        assert UNKNOWN in grid.site_totals()

    def test_server_grid(self, broot_tiny, estimate):
        grid = server_load_grid(
            estimate,
            broot_tiny.internet.geodb,
            server_of_block=lambda block: f"ns{1 + block % 4}",
        )
        assert set(grid.site_totals()) <= {"ns1", "ns2", "ns3", "ns4"}


class TestAsciiMap:
    def test_renders_legend_and_cells(self, broot_tiny, broot_scan):
        grid = catchment_grid(
            broot_scan.catchment, broot_tiny.internet.geodb, cell_degrees=6
        )
        text = render_ascii_map(grid)
        assert "legend:" in text
        assert "LAX" in text and "MIA" in text
        body = text.split("legend:")[0]
        assert any(symbol in body for symbol in ("L", "M"))

    def test_custom_symbols(self, broot_tiny, broot_scan):
        grid = catchment_grid(
            broot_scan.catchment, broot_tiny.internet.geodb, cell_degrees=6
        )
        text = render_ascii_map(grid, site_symbols={"LAX": "l", "MIA": "m"})
        assert "l=LAX" in text

    def test_summary(self, broot_tiny, broot_scan):
        grid = catchment_grid(broot_scan.catchment, broot_tiny.internet.geodb)
        summary = grid_site_summary(grid)
        assert sum(summary.values()) > 0
