"""Public API surface: everything advertised in __all__ must resolve."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.netaddr",
    "repro.geo",
    "repro.topology",
    "repro.bgp",
    "repro.anycast",
    "repro.icmp",
    "repro.probing",
    "repro.collector",
    "repro.dns",
    "repro.atlas",
    "repro.resolvers",
    "repro.traffic",
    "repro.load",
    "repro.core",
    "repro.analysis",
    "repro.obs",
    "repro.service",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_packages_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__.strip()) > 20


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_errors_hierarchy():
    from repro import errors

    for name in (
        "AddressError", "TopologyError", "RoutingError", "MeasurementError",
        "PacketError", "DNSError", "DatasetError", "ConfigurationError",
        "ServiceError", "HttpError",
    ):
        exception_type = getattr(errors, name)
        assert issubclass(exception_type, errors.ReproError)


def test_quickstart_snippet_works():
    """The README quickstart (at tiny scale), observer included."""
    from repro import Observer, Verfploeter, broot_like

    scenario = broot_like(scale="tiny")
    observer = Observer.collecting()
    vp = Verfploeter(scenario.internet, scenario.service, observer=observer)
    scan = vp.run_scan()
    fractions = scan.catchment.fractions()
    assert set(fractions) == {"LAX", "MIA"}
    assert sum(fractions.values()) == pytest.approx(1.0)
    metrics_table = observer.metrics.render_text()
    assert "probe.probes_sent" in metrics_table
    assert "catchment.fraction{site=LAX}" in metrics_table
