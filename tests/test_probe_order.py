"""Probe-order seed streams: one derivation site, provably distinct labels."""

from __future__ import annotations

import pytest

from repro.probing.hitlist import Hitlist, HitlistEntry
from repro.probing.order import PseudorandomOrder, round_order_seed
from repro.probing.prober import Prober, ProberConfig
from repro.rng import derive_seed


def _hitlist(n: int) -> Hitlist:
    return Hitlist(
        HitlistEntry(block=i, address=(i << 8) | 1, score=1.0) for i in range(n)
    )


def test_round_order_seed_distinct_across_rounds():
    seeds = {round_order_seed(1234, round_id) for round_id in range(64)}
    assert len(seeds) == 64


def test_round_order_seed_distinct_across_parents():
    seeds = {round_order_seed(parent, 0) for parent in range(64)}
    assert len(seeds) == 64


def test_round_order_label_is_namespaced():
    """Regression for the probe-order label collision.

    The old raw ``probe-order-{round_id}`` label was derived
    independently by the prober and the vectorized engine; any third
    subsystem formatting the same pattern would silently share their
    stream.  The namespaced label is a provably different stream from
    the old one and cannot be produced by naive ``{name}-{id}``
    formatting.
    """
    for round_id in range(8):
        old = derive_seed(99, f"probe-order-{round_id}")
        new = round_order_seed(99, round_id)
        assert new != old
        assert new == derive_seed(99, f"probing.order/round/{round_id}")


def test_prober_exposes_the_same_stream():
    prober = Prober(_hitlist(50), ProberConfig(source_address=0x01010101), seed=77)
    for round_id in (0, 1, 5):
        assert prober.order_seed(round_id) == round_order_seed(77, round_id)


def test_schedule_uses_the_shared_stream():
    """The schedule's permutation comes from ``order_seed`` — the same
    entry point the vectorized engine consumes."""
    hitlist = _hitlist(40)
    prober = Prober(hitlist, ProberConfig(source_address=0x01010101), seed=3)
    schedule = prober.schedule_round(round_id=2)
    order = PseudorandomOrder(len(hitlist), prober.order_seed(2))
    reference = [hitlist[index].address for index in order]
    scheduled = [probe.destination for probe in schedule]
    assert scheduled == reference


def test_fastscan_consumes_the_prober_stream(broot_verfploeter):
    pytest.importorskip("numpy")
    from repro.core.fastscan import FastScanEngine

    engine = FastScanEngine(broot_verfploeter)
    assert engine._prober is broot_verfploeter._prober
    offsets = engine._send_offsets(round_id=1)
    schedule = broot_verfploeter._prober.schedule_round(round_id=1)
    index_of = {
        entry.address: index
        for index, entry in enumerate(broot_verfploeter.hitlist)
    }
    # The k-th hitlist entry is probed at the same offset in both engines.
    for probe in list(schedule)[:100]:
        k = index_of[probe.destination]
        assert offsets[k] == pytest.approx(probe.send_time - schedule.start_time)
