"""Tests for the synthetic Internet generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology.asys import ASTier
from repro.topology.generator import SeededAS, TopologyConfig, build_internet


@pytest.fixture(scope="module")
def internet():
    return build_internet(
        TopologyConfig(
            seed=5,
            tier1_count=4,
            transit_count=15,
            stub_count=70,
            max_blocks_per_prefix=8,
            seeded_ases=(
                SeededAS("GIANT", "transit", "CN", ("CN", "CN"), ((16, 2),),
                         flipper=True, block_density=0.3),
                SeededAS("PINNED", "stub", "NL", ("NL",), ((22, 1),),
                         provider_names=("TIER1-0",)),
            ),
        )
    )


class TestStructure:
    def test_counts(self, internet):
        tiers = [asys.tier for asys in internet.ases.values()]
        assert tiers.count(ASTier.TIER1) == 4
        assert tiers.count(ASTier.TRANSIT) == 15 + 1  # +GIANT
        assert tiers.count(ASTier.STUB) == 70 + 1  # +PINNED

    def test_tier1_clique(self, internet):
        tier1 = [asn for asn, a in internet.ases.items() if a.tier == ASTier.TIER1]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                assert internet.graph.has_link(a, b)

    def test_every_non_tier1_has_provider(self, internet):
        for asn, asys in internet.ases.items():
            if asys.tier != ASTier.TIER1:
                assert internet.graph.providers_of(asn), f"{asys.name} has no provider"

    def test_provider_hierarchy_acyclic(self, internet):
        # Walk up from every AS; must terminate (no provider cycles).
        for start in internet.ases:
            seen = set()
            frontier = [start]
            depth = 0
            while frontier and depth < 50:
                depth += 1
                frontier = [
                    provider
                    for asn in frontier
                    for provider in internet.graph.providers_of(asn)
                    if provider not in seen and not seen.add(provider)
                ]
            assert depth < 50, "provider chain did not terminate"

    def test_seeded_ases_exist(self, internet):
        giant = internet.ases[internet.find_asn_by_name("GIANT")]
        assert giant.flipper
        assert giant.country_code == "CN"
        assert len(giant.pop_ids) == 2

    def test_seeded_provider_pinning(self, internet):
        pinned = internet.find_asn_by_name("PINNED")
        tier1_0 = internet.find_asn_by_name("TIER1-0")
        assert tier1_0 in internet.graph.providers_of(pinned)

    def test_unknown_name_raises(self, internet):
        with pytest.raises(TopologyError):
            internet.find_asn_by_name("NOPE")


class TestPrefixes:
    def test_no_overlapping_announcements(self, internet):
        announced = sorted(internet.announced, key=lambda e: e.prefix)
        for earlier, later in zip(announced, announced[1:]):
            assert not earlier.prefix.overlaps(later.prefix)

    def test_blocks_inside_their_prefix(self, internet):
        for entry in internet.announced:
            for block in entry.populated_blocks:
                assert entry.prefix.contains_address(block << 8)

    def test_block_assignment_consistent(self, internet):
        for entry in internet.announced:
            for block in entry.populated_blocks:
                assert internet.asn_of_block(block) == entry.origin_asn

    def test_lpm_resolves_blocks(self, internet):
        for block in list(internet.blocks)[:200]:
            announced = internet.announced_prefix_of(block)
            assert announced is not None
            assert block in announced.populated_blocks

    def test_longer_prefixes_more_numerous(self, internet):
        lengths = [entry.length for entry in internet.announced]
        short = sum(1 for length in lengths if length <= 16)
        long = sum(1 for length in lengths if length >= 20)
        assert long > short

    def test_seeded_prefix_plan_respected(self, internet):
        giant = internet.find_asn_by_name("GIANT")
        plans = internet.prefixes_of_asn(giant)
        assert len(plans) == 2
        assert all(entry.length == 16 for entry in plans)


class TestBlocksAndGeo:
    def test_block_pop_belongs_to_as(self, internet):
        for block in list(internet.blocks)[:200]:
            pop = internet.pop_of_block(block)
            assert pop.asn == internet.asn_of_block(block)

    def test_most_blocks_geolocated(self, internet):
        located = sum(1 for b in internet.blocks if b in internet.geodb)
        assert located >= 0.99 * len(internet)

    def test_block_country_matches_pop(self, internet):
        for block in list(internet.blocks)[:200]:
            country = internet.country_of_block(block)
            if country is not None:
                assert country == internet.pop_of_block(block).country_code

    def test_unpopulated_block_raises(self, internet):
        missing = max(internet.blocks) + 1000
        with pytest.raises(TopologyError):
            internet.asn_of_block(missing)
        assert not internet.has_block(missing)


class TestDeterminism:
    def test_same_seed_same_internet(self):
        config = TopologyConfig(seed=31, tier1_count=3, transit_count=8,
                                stub_count=30, max_blocks_per_prefix=4)
        first = build_internet(config)
        second = build_internet(config)
        assert list(first.blocks) == list(second.blocks)
        assert first.summary() == second.summary()
        for asn in first.ases:
            assert first.ases[asn].name == second.ases[asn].name

    def test_different_seed_differs(self):
        base = dict(tier1_count=3, transit_count=8, stub_count=30,
                    max_blocks_per_prefix=4)
        first = build_internet(TopologyConfig(seed=1, **base))
        second = build_internet(TopologyConfig(seed=2, **base))
        assert list(first.blocks) != list(second.blocks)


class TestConfigValidation:
    def test_rejects_zero_tier1(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(tier1_count=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(stub_multihome_fraction=1.5)

    def test_rejects_bad_seeded_tier(self):
        with pytest.raises(ConfigurationError):
            SeededAS("X", "mega", "US", ("US",), ((16, 1),))

    def test_rejects_empty_pops(self):
        with pytest.raises(ConfigurationError):
            SeededAS("X", "stub", "US", (), ((16, 1),))

    def test_rejects_bad_prefix_plan(self):
        with pytest.raises(ConfigurationError):
            SeededAS("X", "stub", "US", ("US",), ((33, 1),))

    def test_unknown_seeded_provider_raises(self):
        with pytest.raises(ConfigurationError):
            build_internet(
                TopologyConfig(
                    seed=1, tier1_count=2, transit_count=2, stub_count=2,
                    seeded_ases=(
                        SeededAS("X", "stub", "US", ("US",), ((22, 1),),
                                 provider_names=("MISSING",)),
                    ),
                )
            )
