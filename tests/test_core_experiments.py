"""Tests for experiment drivers and the coverage comparison."""

from __future__ import annotations

import pytest

from repro.core.comparison import compare_coverage
from repro.core.experiments import (
    BROOT_PREPEND_CONFIGS,
    prepend_sweep,
    run_stability_series,
)


@pytest.fixture(scope="module")
def sweep(broot_tiny, broot_verfploeter):
    return prepend_sweep(broot_verfploeter, broot_tiny.atlas)


@pytest.fixture(scope="module")
def series(broot_verfploeter):
    return run_stability_series(broot_verfploeter, rounds=8, interval_seconds=900.0)


class TestCoverageComparison:
    def test_table4_arithmetic(self, broot_tiny, broot_verfploeter, broot_routing, broot_scan):
        measurement = broot_tiny.atlas.measure(broot_routing, broot_tiny.service)
        comparison = compare_coverage(measurement, broot_scan, broot_tiny.internet)
        assert comparison.atlas_considered_vps == len(broot_tiny.atlas.vps)
        assert (
            comparison.atlas_responding_vps + comparison.atlas_nonresponding_vps
            == comparison.atlas_considered_vps
        )
        assert (
            comparison.verf_responding_blocks + comparison.verf_nonresponding_blocks
            == comparison.verf_considered_blocks
        )
        assert (
            comparison.verf_geolocatable_blocks + comparison.verf_no_location_blocks
            == comparison.verf_responding_blocks
        )
        assert comparison.overlap_blocks <= comparison.atlas_responding_blocks
        assert comparison.coverage_ratio > 10

    def test_most_atlas_blocks_overlap(self, broot_tiny, broot_routing, broot_scan):
        measurement = broot_tiny.atlas.measure(broot_routing, broot_tiny.service)
        comparison = compare_coverage(measurement, broot_scan, broot_tiny.internet)
        assert comparison.atlas_overlap_fraction > 0.5


class TestPrependSweep:
    def test_all_configs_measured(self, sweep):
        assert [entry.label for entry in sweep] == [
            label for label, _ in BROOT_PREPEND_CONFIGS
        ]

    def test_fractions_sum_to_one(self, sweep):
        for entry in sweep:
            assert sum(entry.verfploeter_fractions.values()) == pytest.approx(1.0)
            assert sum(entry.atlas_fractions.values()) == pytest.approx(1.0)

    def test_monotone_toward_lax(self, sweep):
        """Prepending MIA progressively shifts catchment to LAX."""
        verf = [entry.verfploeter_fraction_of("LAX") for entry in sweep]
        # Order: +1 LAX, equal, +1 MIA, +2 MIA, +3 MIA.
        assert verf[0] <= verf[1] <= verf[2] <= verf[3] <= verf[4]

    def test_atlas_tracks_verfploeter(self, sweep):
        for entry in sweep:
            assert abs(
                entry.atlas_fraction_of("LAX") - entry.verfploeter_fraction_of("LAX")
            ) < 0.35

    def test_residual_at_extremes(self, sweep):
        """Some networks ignore prepending (customer cones, pins)."""
        assert sweep[-1].verfploeter_fraction_of("MIA") > 0.0


class TestStabilitySeries:
    def test_round_count(self, series):
        assert series.round_count == 8
        assert len(series.rounds) == 7

    def test_categories_populated(self, series):
        assert series.median_of("stable") > 0
        assert series.median_of("to_nr") > 0
        assert series.median_of("from_nr") > 0

    def test_stability_dominates(self, series):
        assert series.median_of("stable") > 50 * series.median_of("flipped")

    def test_flip_counts_match_rounds(self, series):
        assert series.total_flips() == sum(entry.flipped for entry in series.rounds)

    def test_stable_catchment_excludes_flippers(self, series):
        stable = series.stable_catchment()
        flipping = series.flipping_blocks()
        for block in flipping:
            assert block not in stable

    def test_median_of_empty(self, broot_verfploeter):
        single = run_stability_series(broot_verfploeter, rounds=1)
        assert single.median_of("stable") == 0.0
