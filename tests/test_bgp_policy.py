"""Tests for announcement policies."""

from __future__ import annotations

import pytest

from repro.bgp.policy import AnnouncementPolicy, SiteAnnouncement
from repro.errors import ConfigurationError


class TestSiteAnnouncement:
    def test_effective_length(self):
        assert SiteAnnouncement("LAX", 10).effective_length == 1
        assert SiteAnnouncement("LAX", 10, prepend=3).effective_length == 4

    def test_rejects_negative_prepend(self):
        with pytest.raises(ConfigurationError):
            SiteAnnouncement("LAX", 10, prepend=-1)


class TestPolicy:
    UPSTREAMS = {"LAX": 10, "MIA": 20}

    def test_uniform(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS)
        assert policy.site_codes == ["LAX", "MIA"]
        assert policy.prepend_of("LAX") == 0

    def test_with_prepends(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS, prepends={"MIA": 2})
        assert policy.prepend_of("MIA") == 2
        assert policy.prepend_of("LAX") == 0

    def test_withdrawn_site(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS, withdrawn=["MIA"])
        assert policy.site_codes == ["LAX"]

    def test_rejects_all_withdrawn(self):
        with pytest.raises(ConfigurationError):
            AnnouncementPolicy.uniform(self.UPSTREAMS, withdrawn=["LAX", "MIA"])

    def test_rejects_unknown_prepend_site(self):
        with pytest.raises(ConfigurationError):
            AnnouncementPolicy.uniform(self.UPSTREAMS, prepends={"XXX": 1})

    def test_rejects_unknown_withdrawn_site(self):
        with pytest.raises(ConfigurationError):
            AnnouncementPolicy.uniform(self.UPSTREAMS, withdrawn=["XXX"])

    def test_rejects_duplicate_sites(self):
        with pytest.raises(ConfigurationError):
            AnnouncementPolicy(
                [SiteAnnouncement("LAX", 1), SiteAnnouncement("LAX", 2)]
            )

    def test_with_prepend_copy(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS)
        modified = policy.with_prepend("MIA", 3)
        assert policy.prepend_of("MIA") == 0
        assert modified.prepend_of("MIA") == 3

    def test_with_prepend_unknown_site(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS)
        with pytest.raises(ConfigurationError):
            policy.with_prepend("XXX", 1)

    def test_prepend_of_unknown_site(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS)
        with pytest.raises(ConfigurationError):
            policy.prepend_of("XXX")

    def test_describe(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS)
        assert policy.describe() == "equal"
        assert policy.with_prepend("MIA", 2).describe() == "MIA+2"

    def test_as_dict(self):
        policy = AnnouncementPolicy.uniform(self.UPSTREAMS, prepends={"LAX": 1})
        assert policy.as_dict() == {"LAX": 1, "MIA": 0}
