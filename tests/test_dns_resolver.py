"""Tests for the iterative resolver over the synthetic namespace."""

from __future__ import annotations

import pytest

from repro.dns.message import RCODE_NXDOMAIN, TYPE_A, TYPE_NS
from repro.dns.resolver import (
    IterativeResolver,
    SyntheticNamespace,
    build_leaf_zone,
    build_tld_zone,
)
from repro.errors import DNSError


@pytest.fixture(scope="module")
def resolver():
    return IterativeResolver()


class TestZoneBuilders:
    def test_tld_zone_delegates_example(self):
        zone = build_tld_zone("nl")
        answer = zone.lookup("example.nl", TYPE_NS)
        assert answer.is_referral
        assert answer.additionals  # glue for ns1.example.nl

    def test_tld_zone_nxdomain_elsewhere(self):
        zone = build_tld_zone("nl")
        assert zone.lookup("other.nl", TYPE_A).rcode == RCODE_NXDOMAIN

    def test_leaf_zone_hosts(self):
        zone = build_leaf_zone("example.nl")
        answer = zone.lookup("www.example.nl", TYPE_A)
        assert answer.rcode == 0
        assert answer.answers[0].a_address() >> 24 == 0x0B

    def test_leaf_zone_nxdomain(self):
        zone = build_leaf_zone("example.nl")
        assert zone.lookup("nope.example.nl", TYPE_A).rcode == RCODE_NXDOMAIN


class TestNamespace:
    def test_lazy_zone_construction(self):
        namespace = SyntheticNamespace()
        assert namespace.zone_for("com").origin == "com"
        assert namespace.zone_for("example.com").origin == "example.com"
        # Cached: same object back.
        assert namespace.zone_for("com") is namespace.zone_for("com")

    def test_unknown_zone_rejected(self):
        namespace = SyntheticNamespace()
        with pytest.raises(DNSError):
            namespace.zone_for("no-such-tld-zzz")
        with pytest.raises(DNSError):
            namespace.zone_for("other.com")


class TestIterativeResolution:
    def test_resolves_through_three_levels(self, resolver):
        result = resolver.resolve("www.example.nl")
        assert result.rcode == 0
        assert result.address is not None
        assert result.zones_consulted == [".", "nl", "example.nl"]

    def test_every_tld_resolvable(self, resolver):
        for tld in ("com", "net", "br", "cn", "jp"):
            result = resolver.resolve(f"api.example.{tld}")
            assert result.rcode == 0, tld
            assert result.address is not None

    def test_junk_nxdomain_at_root(self, resolver):
        result = resolver.resolve("www.belkin")
        assert result.rcode == RCODE_NXDOMAIN
        assert result.zones_consulted == ["."]

    def test_nxdomain_at_leaf(self, resolver):
        result = resolver.resolve("missing-host.example.nl")
        assert result.rcode == RCODE_NXDOMAIN
        assert result.zones_consulted[-1] == "example.nl"

    def test_lame_delegation_servfail(self, resolver):
        # other.nl is NXDOMAIN in the TLD zone (not delegated), so this
        # resolves to NXDOMAIN rather than SERVFAIL; a genuinely lame
        # path needs a delegated-but-unserved child, which the synthetic
        # namespace doesn't produce — assert the NXDOMAIN instead.
        result = resolver.resolve("www.other.nl")
        assert result.rcode == RCODE_NXDOMAIN

    def test_deterministic_addresses(self):
        first = IterativeResolver().resolve("www.example.de").address
        second = IterativeResolver().resolve("www.example.de").address
        assert first == second

    def test_distinct_hosts_distinct_addresses(self, resolver):
        www = resolver.resolve("www.example.fr").address
        mail = resolver.resolve("mail.example.fr").address
        assert www != mail

    def test_sampler_good_names_resolve(self, resolver):
        """The workload's 'good' query names truly resolve end to end."""
        from repro.dns.root import build_root_zone
        from repro.traffic.names import QueryNameSampler

        sampler = QueryNameSampler(build_root_zone(), seed=5)
        for name in sampler.sample_many(3, 30, 1.0):
            result = resolver.resolve(name)
            assert result.rcode == 0, name
            assert result.address is not None

    def test_sampler_junk_names_fail(self, resolver):
        from repro.dns.root import build_root_zone
        from repro.traffic.names import QueryNameSampler

        sampler = QueryNameSampler(build_root_zone(), seed=5)
        for name in sampler.sample_many(3, 30, 0.0):
            assert resolver.resolve(name).rcode == RCODE_NXDOMAIN, name

    def test_max_depth_guard(self):
        with pytest.raises(DNSError):
            IterativeResolver(max_depth=0)
        shallow = IterativeResolver(max_depth=1)
        with pytest.raises(DNSError):
            shallow.resolve("www.example.nl")
