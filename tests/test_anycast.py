"""Tests for sites, services, and catchment maps."""

from __future__ import annotations

import pytest

from repro.anycast.catchment import CatchmentMap
from repro.anycast.service import AnycastService
from repro.anycast.site import AnycastSite
from repro.errors import ConfigurationError
from repro.netaddr.prefix import Prefix


def make_service():
    return AnycastService(
        "svc.example",
        Prefix("192.0.2.0/24"),
        [
            AnycastSite("LAX", "Los Angeles", "US", 34.0, -118.0, 100),
            AnycastSite("MIA", "Miami", "US", 25.8, -80.2, 200),
        ],
    )


class TestService:
    def test_site_lookup(self):
        service = make_service()
        assert service.site("LAX").upstream_asn == 100
        assert service.site_codes == ["LAX", "MIA"]

    def test_unknown_site(self):
        with pytest.raises(ConfigurationError):
            make_service().site("XXX")

    def test_default_measurement_address(self):
        service = make_service()
        assert service.measurement_address == Prefix("192.0.2.0/24").network + 1

    def test_measurement_address_must_be_inside(self):
        with pytest.raises(ConfigurationError):
            AnycastService(
                "svc",
                Prefix("192.0.2.0/24"),
                [AnycastSite("A", "A", "US", 0, 0, 1)],
                measurement_address=0x01020304,
            )

    def test_needs_sites(self):
        with pytest.raises(ConfigurationError):
            AnycastService("svc", Prefix("192.0.2.0/24"), [])

    def test_duplicate_codes_rejected(self):
        sites = [
            AnycastSite("A", "x", "US", 0, 0, 1),
            AnycastSite("A", "y", "US", 0, 0, 2),
        ]
        with pytest.raises(ConfigurationError):
            AnycastService("svc", Prefix("192.0.2.0/24"), sites)

    def test_default_policy(self):
        policy = make_service().default_policy()
        assert policy.as_dict() == {"LAX": 0, "MIA": 0}

    def test_policy_with_prepends(self):
        policy = make_service().policy(prepends={"MIA": 2})
        assert policy.prepend_of("MIA") == 2

    def test_test_prefix_clone(self):
        service = make_service()
        clone = service.test_prefix_clone(Prefix("192.0.3.0/24"))
        assert clone.site_codes == service.site_codes
        assert clone.prefix == Prefix("192.0.3.0/24")
        assert clone.measurement_address == Prefix("192.0.3.0/24").network + 1

    def test_upstreams(self):
        assert make_service().upstreams() == {"LAX": 100, "MIA": 200}


class TestCatchmentMap:
    def test_counts_and_fractions(self):
        catchment = CatchmentMap(["A", "B"], {1: "A", 2: "A", 3: "B", 4: "A"})
        assert catchment.counts() == {"A": 3, "B": 1}
        assert catchment.fraction_of("A") == 0.75

    def test_empty_fractions(self):
        catchment = CatchmentMap(["A"], {})
        assert catchment.fractions() == {"A": 0.0}

    def test_site_of(self):
        catchment = CatchmentMap(["A"], {1: "A"})
        assert catchment.site_of(1) == "A"
        assert catchment.site_of(2) is None
        assert 1 in catchment
        assert 2 not in catchment

    def test_blocks_of_site(self):
        catchment = CatchmentMap(["A", "B"], {1: "A", 2: "B", 3: "A"})
        assert sorted(catchment.blocks_of_site("A")) == [1, 3]

    def test_restrict(self):
        catchment = CatchmentMap(["A", "B"], {1: "A", 2: "B", 3: "A"})
        restricted = catchment.restrict([1, 2, 99])
        assert len(restricted) == 2
        assert restricted.site_of(3) is None

    def test_diff_categories(self):
        earlier = CatchmentMap(["A", "B"], {1: "A", 2: "A", 3: "B"})
        later = CatchmentMap(["A", "B"], {1: "A", 2: "B", 4: "A"})
        diff = earlier.diff(later)
        assert diff.stable == 1          # block 1
        assert diff.flipped == 1         # block 2
        assert diff.disappeared == 1     # block 3
        assert diff.appeared == 1        # block 4
        assert diff.flipped_blocks == (2,)

    def test_diff_identical(self):
        catchment = CatchmentMap(["A"], {1: "A", 2: "A"})
        diff = catchment.diff(catchment)
        assert diff.stable == 2
        assert diff.flipped == diff.appeared == diff.disappeared == 0
