"""Tests for scan serialisation, RSSAC reports, and prediction decay."""

from __future__ import annotations

import io

import pytest

from repro.core.experiments import prediction_decay_study
from repro.datasets import read_scan, write_scan
from repro.errors import DatasetError
from repro.load.estimator import LoadEstimate
from repro.load.rssac import build_rssac_report


class TestScanSerialisation:
    def test_roundtrip(self, broot_scan):
        buffer = io.StringIO()
        write_scan(broot_scan, buffer)
        buffer.seek(0)
        restored = read_scan(buffer)
        assert restored.dataset_id == broot_scan.dataset_id
        assert restored.round_id == broot_scan.round_id
        assert restored.stats == broot_scan.stats
        assert dict(restored.catchment.items()) == dict(broot_scan.catchment.items())
        assert restored.catchment.site_codes == broot_scan.catchment.site_codes
        for block, rtt in broot_scan.rtts.items():
            assert restored.rtts[block] == pytest.approx(rtt, abs=1e-3)

    def test_rejects_garbage(self):
        with pytest.raises(DatasetError):
            read_scan(io.StringIO("not a dataset\n"))

    def test_rejects_truncated_row(self, broot_scan):
        buffer = io.StringIO()
        write_scan(broot_scan, buffer)
        text = buffer.getvalue().splitlines()
        text.append("192.0.2.0/24\tLAX")  # missing RTT column
        with pytest.raises(DatasetError):
            read_scan(io.StringIO("\n".join(text)))

    def test_human_readable(self, broot_scan):
        buffer = io.StringIO()
        write_scan(broot_scan, buffer)
        text = buffer.getvalue()
        assert text.startswith("# verfploeter-scan v1")
        assert "/24\t" in text


class TestRssacReport:
    @pytest.fixture(scope="class")
    def report(self, broot_tiny, broot_routing):
        load = broot_tiny.day_load("2017-05-15", target_total_queries=1e6)
        return build_rssac_report("b.root-servers.net", load, broot_routing)

    def test_totals(self, report):
        assert report.total_queries == pytest.approx(1e6)
        assert 0 < report.total_responses <= report.total_queries

    def test_sites_partition_traffic(self, report):
        assert sum(site.queries for site in report.sites) == pytest.approx(
            report.total_queries, rel=1e-6
        )
        assert sum(site.unique_sources for site in report.sites) == (
            report.unique_sources
        )

    def test_responses_below_queries_per_site(self, report):
        for site in report.sites:
            assert site.responses <= site.queries

    def test_site_lookup(self, report):
        assert report.site("LAX").site_code == "LAX"
        with pytest.raises(DatasetError):
            report.site("XXX")

    def test_rendering(self, report):
        buffer = io.StringIO()
        report.write(buffer)
        text = buffer.getvalue()
        assert text.startswith("---\n")
        assert "dns-udp-queries-received" in text
        assert "  - site: LAX" in text


class TestPredictionDecay:
    def test_decay_curve(self, broot_tiny, broot_verfploeter):
        points = prediction_decay_study(
            broot_verfploeter,
            lambda era: broot_tiny.day_load(f"era-{era}", day_index=era),
            eras=(0, 1, 2),
        )
        assert [point.era for point in points] == [0, 1, 2]
        for point in points:
            assert 0.0 <= point.max_error() <= 1.0
        # The same-era prediction should not be the *worst* of the set
        # (the paper: stale data degrades predictions).
        errors = [point.max_error() for point in points]
        assert errors[0] <= max(errors) + 1e-12
        assert errors[0] == min(errors) or errors[0] < 0.12
