"""Shared fixtures: tiny scenarios, reused across the suite.

Session-scoped because topology generation and routing are pure
functions of their seeds — tests never mutate them.
"""

from __future__ import annotations

import pytest

from repro.bgp.propagation import compute_routes
from repro.core.scenarios import broot_like, tangled_like
from repro.core.verfploeter import Verfploeter
from repro.topology.generator import SeededAS, TopologyConfig, build_internet


@pytest.fixture(scope="session")
def tiny_internet():
    """A small standalone topology with two seeded upstreams."""
    return build_internet(
        TopologyConfig(
            seed=99,
            tier1_count=4,
            transit_count=12,
            stub_count=60,
            max_blocks_per_prefix=8,
            seeded_ases=(
                SeededAS("UP-A", "transit", "US", ("US",), ((20, 1),)),
                SeededAS("UP-B", "transit", "DE", ("DE",), ((20, 1),)),
            ),
        )
    )


@pytest.fixture(scope="session")
def broot_tiny():
    """The B-Root scenario at test scale."""
    return broot_like(scale="tiny", seed=7)


@pytest.fixture(scope="session")
def tangled_tiny():
    """The Tangled scenario at test scale."""
    return tangled_like(scale="tiny", seed=11)


@pytest.fixture(scope="session")
def broot_verfploeter(broot_tiny):
    """A Verfploeter deployment on the tiny B-Root scenario."""
    return Verfploeter(broot_tiny.internet, broot_tiny.service)


@pytest.fixture(scope="session")
def broot_routing(broot_verfploeter):
    """Default-policy routing for the tiny B-Root scenario."""
    return broot_verfploeter.routing_for()


@pytest.fixture(scope="session")
def broot_scan(broot_verfploeter, broot_routing):
    """One completed scan of the tiny B-Root scenario."""
    return broot_verfploeter.run_scan(routing=broot_routing, dataset_id="SBV-test")


@pytest.fixture(scope="session")
def two_site_routing(tiny_internet):
    """Routing over the standalone topology with two sites A and B."""
    from repro.bgp.policy import AnnouncementPolicy

    policy = AnnouncementPolicy.uniform(
        {
            "A": tiny_internet.find_asn_by_name("UP-A"),
            "B": tiny_internet.find_asn_by_name("UP-B"),
        }
    )
    return compute_routes(tiny_internet, policy)
