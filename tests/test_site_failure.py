"""Tests for the site-failure what-if study."""

from __future__ import annotations

import pytest

from repro.core.experiments import site_failure_study
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN


@pytest.fixture(scope="module")
def estimate(broot_tiny):
    return LoadEstimate(broot_tiny.day_load("failure-day"))


@pytest.fixture(scope="module")
def results(broot_verfploeter, estimate):
    return site_failure_study(broot_verfploeter, estimate)


class TestSiteFailure:
    def test_one_result_per_site(self, broot_tiny, results):
        assert [r.withdrawn_site for r in results] == broot_tiny.service.site_codes

    def test_unknown_bucket_tracked(self, results):
        for result in results:
            assert UNKNOWN in result.baseline
            assert UNKNOWN in result.after

    def test_withdrawn_site_gets_nothing(self, results):
        for result in results:
            assert result.after[result.withdrawn_site] == 0.0

    def test_survivor_load_increases(self, results):
        for result in results:
            survivors = [
                code for code in result.baseline
                if code != result.withdrawn_site and code != UNKNOWN
            ]
            gained = sum(
                result.after[code] - result.baseline[code] for code in survivors
            )
            assert gained > 0

    def test_total_load_conserved_including_unknown(self, results, estimate):
        """Every query lands somewhere: sites + UNK = the whole day."""
        for result in results:
            assert sum(result.baseline.values()) == pytest.approx(estimate.total())
            assert sum(result.after.values()) == pytest.approx(estimate.total())

    def test_worst_overload_at_least_one(self, results):
        for result in results:
            _, factor = result.worst_overload()
            assert factor >= 1.0

    def test_subset_of_sites(self, broot_verfploeter, estimate):
        only_lax = site_failure_study(broot_verfploeter, estimate, sites=["LAX"])
        assert len(only_lax) == 1
        assert only_lax[0].withdrawn_site == "LAX"
