"""Tests for the canonical scenarios."""

from __future__ import annotations

import pytest

from repro.core.scenarios import SCALES, broot_like, nl_like, tangled_like
from repro.errors import ConfigurationError


class TestBroot:
    def test_sites(self, broot_tiny):
        assert broot_tiny.service.site_codes == ["LAX", "MIA"]
        assert broot_tiny.service.prefix.length == 24

    def test_upstreams_exist(self, broot_tiny):
        for site in broot_tiny.service.sites:
            assert site.upstream_asn in broot_tiny.internet.ases

    def test_giants_seeded(self, broot_tiny):
        chinanet = broot_tiny.internet.find_asn_by_name("CHINANET")
        assert broot_tiny.internet.ases[chinanet].flipper
        assert broot_tiny.internet.blocks_of_asn(chinanet)

    def test_ampath_is_south_america_heavy(self, broot_tiny):
        ampath = broot_tiny.internet.find_asn_by_name("AMPATH")
        pops = broot_tiny.internet.pops_of_asn(ampath)
        assert {"US", "BR", "AR"} <= {pop.country_code for pop in pops}

    def test_day_load(self, broot_tiny):
        load = broot_tiny.day_load("2017-05-15", target_total_queries=1e6)
        assert load.total_queries() == pytest.approx(1e6)
        assert load.service_name == "root"

    def test_deterministic(self):
        first = broot_like(scale="tiny", seed=7)
        second = broot_like(scale="tiny", seed=7)
        assert first.internet.summary() == second.internet.summary()
        assert [vp.block for vp in first.atlas.vps] == [
            vp.block for vp in second.atlas.vps
        ]


class TestTangled:
    def test_nine_sites(self, tangled_tiny):
        assert len(tangled_tiny.service.sites) == 9
        assert set(tangled_tiny.service.site_codes) == {
            "SYD", "CDG", "HND", "ENS", "LHR", "MIA", "IAD", "SAO", "CPH"
        }

    def test_vultr_hosts_three_sites(self, tangled_tiny):
        vultr = tangled_tiny.internet.find_asn_by_name("VULTR")
        shared = [
            site for site in tangled_tiny.service.sites
            if site.upstream_asn == vultr
        ]
        assert {site.code for site in shared} == {"SYD", "CDG", "LHR"}

    def test_sao_and_mia_share_upstream(self, tangled_tiny):
        service = tangled_tiny.service
        assert service.site("SAO").upstream_asn == service.site("MIA").upstream_asn

    def test_all_scales_defined(self):
        assert set(SCALES) == {"tiny", "small", "medium", "large", "xlarge"}

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            tangled_like(scale="galactic")


class TestNl:
    def test_nl_profile(self):
        scenario = nl_like(scale="tiny", seed=3)
        assert scenario.profile.name == "nl"
        assert scenario.profile.multiplier_for("NL") > 10

    def test_nl_sites(self):
        scenario = nl_like(scale="tiny", seed=3)
        assert scenario.service.site_codes == ["AMS", "IAD"]


class TestAtlasSizing:
    def test_vp_count_tracks_coverage_ratio(self, broot_tiny):
        responsive = sum(
            1 for block in broot_tiny.internet.blocks
            if broot_tiny.internet.host_model.is_stable_responder(
                block, broot_tiny.internet.country_of_block(block)
            )
        )
        expected = max(25, int(responsive / 430.0))
        assert len(broot_tiny.atlas.vps) == expected

    def test_vp_count_override(self):
        scenario = broot_like(scale="tiny", seed=7, vp_count=55)
        assert len(scenario.atlas.vps) == 55
