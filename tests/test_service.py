"""Always-on mapping service: equivalence, determinism, and edge cases."""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.anycast.catchment import CatchmentAccumulator, CatchmentMap
from repro.core.verfploeter import Verfploeter
from repro.errors import ConfigurationError, ServiceError
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN, weight_catchment
from repro.load.windowed import LoadWindow
from repro.obs import Observer
from repro.service import (
    MappingService,
    MeasurementState,
    ReplyBatch,
    RoundEnd,
    RoundStart,
    batch_replay,
    replay_feed,
)
from repro.service.wsgi import JsonApp, render_json

ROUNDS = 4
WINDOW = 3
BATCH = 17


@pytest.fixture(scope="module")
def estimate(broot_tiny):
    return LoadEstimate(broot_tiny.day_load("svc-day"))


@pytest.fixture(scope="module")
def universe(broot_verfploeter):
    return np.array(broot_verfploeter.hitlist.blocks, dtype=np.uint64)


def build_state(broot_routing, universe, estimate, **kwargs):
    kwargs.setdefault("window_rounds", WINDOW)
    kwargs.setdefault("ring_size", ROUNDS + 1)
    return MeasurementState(
        broot_routing.policy.site_codes, universe, estimate, **kwargs
    )


@pytest.fixture(scope="module")
def served(broot_verfploeter, broot_routing, universe, estimate):
    """One fully ingested daemon (module-scoped: tests only read views)."""
    state = build_state(broot_routing, universe, estimate)
    feed = replay_feed(
        broot_verfploeter, routing=broot_routing, rounds=ROUNDS,
        batch_size=BATCH,
    )
    service = MappingService(state, feed)
    assert service.ingest() == ROUNDS
    return service


@pytest.fixture(scope="module")
def batch_rounds(broot_verfploeter, broot_routing):
    """The same rounds measured by the batch scanner (the reference)."""
    return [
        broot_verfploeter.run_scan(
            routing=broot_routing,
            round_id=round_id,
            start_time=round_id * 900.0,
            wire_level=False,
        )
        for round_id in range(ROUNDS)
    ]


class TestIncrementalEquivalence:
    """The streamed state is bit-identical to a batch recompute."""

    def test_catchment_matches_folded_batch_rounds(
        self, served, batch_rounds, broot_routing, universe
    ):
        merged = {}
        for scan in batch_rounds:
            merged.update(dict(scan.catchment.items()))
        view = served.state.view
        streamed = {block: site for block, site in view.catchment.items()}
        assert streamed == merged

    def test_per_round_cleaning_counts_match_batch_scans(
        self, served, batch_rounds
    ):
        for record, scan in zip(served.state.view.rounds, batch_rounds):
            assert record.round_id == scan.round_id
            assert record.kept == scan.stats.kept
            assert record.wrong_round == scan.stats.wrong_round
            assert record.unsolicited == scan.stats.unsolicited
            assert record.late == scan.stats.late
            assert record.duplicates == scan.stats.duplicates

    def test_round_load_bit_identical_to_reference_join(
        self, served, batch_rounds, broot_routing, estimate
    ):
        # Reference: fold rounds 0..r into a dict map, join on the slow
        # dict-backed path.  The service's columnar join over its
        # accumulator snapshot must produce the very same floats.
        site_codes = broot_routing.policy.site_codes
        merged = {}
        for record, scan in zip(served.state.view.rounds, batch_rounds):
            merged.update(dict(scan.catchment.items()))
            reference = weight_catchment(
                CatchmentMap(site_codes, merged), estimate, hourly=True
            )
            for code in [*site_codes, UNKNOWN]:
                assert record.load.daily_of(code) == reference.daily_of(code)
                assert np.array_equal(
                    record.load.hourly_of(code), reference.hourly_of(code)
                )

    def test_window_aggregate_equals_batch_resum(self, served, broot_routing):
        view = served.state.view
        rounds_in_window = view.rounds[-view.window_size:]
        window = LoadWindow(broot_routing.policy.site_codes, view.window_size)
        for record in rounds_in_window:
            window.push(record.load)
        reference = window.aggregate()
        for code in [*view.site_codes, UNKNOWN]:
            assert view.window_load.daily_of(code) == reference.daily_of(code)
            assert np.array_equal(
                view.window_load.hourly_of(code), reference.hourly_of(code)
            )

    def test_batch_replay_helper_matches_streamed_state(
        self, served, batch_rounds, broot_verfploeter, broot_routing, universe
    ):
        engine = broot_verfploeter.fast_engine(routing=broot_routing)
        columnar_rounds = [
            engine.run_scan(round_id=r, start_time=r * 900.0).catchment
            for r in range(ROUNDS)
        ]
        reference = batch_replay(
            broot_routing.policy.site_codes, universe, columnar_rounds
        )
        view = served.state.view
        assert np.array_equal(
            reference.site_index_array, view.catchment.site_index_array
        )


class TestDeterminism:
    """Two same-seed daemons answer every endpoint byte-identically."""

    def test_two_daemons_byte_identical_responses(
        self, broot_tiny, broot_routing, universe, estimate
    ):
        def boot():
            verfploeter = Verfploeter(broot_tiny.internet, broot_tiny.service)
            state = build_state(broot_routing, universe, estimate)
            feed = replay_feed(
                verfploeter, routing=broot_routing, rounds=ROUNDS,
                batch_size=BATCH,
            )
            service = MappingService(state, feed)
            service.ingest()
            return service

        first, second = boot(), boot()
        sample_blocks = first.state.view.catchment.mapped_block_array()[:5]
        paths = [
            ("/v1/load", ""),
            ("/v1/diff", "rounds=1"),
            ("/v1/diff", f"rounds={ROUNDS - 1}"),
            ("/v1/health", ""),
        ] + [(f"/v1/catchment/{int(b)}", "") for b in sample_blocks]
        for path, query in paths:
            assert first.app.respond("GET", path, query) == second.app.respond(
                "GET", path, query
            )


class TestEdgeCases:
    def test_query_before_first_complete_round(
        self, broot_routing, universe, estimate
    ):
        state = build_state(broot_routing, universe, estimate)
        service = MappingService(state, iter(()))
        for path in ("/v1/load", "/v1/catchment/1234", "/v1/diff"):
            status, body = service.app.respond("GET", path)
            assert status == 409
            assert json.loads(body)["error"]["code"] == "no-rounds"
        status, body = service.app.respond("GET", "/v1/health")
        assert status == 200
        assert json.loads(body)["rounds_completed"] == 0

    def test_empty_diff_window(self, broot_verfploeter, broot_routing,
                               universe, estimate):
        state = build_state(broot_routing, universe, estimate)
        service = MappingService(
            state,
            replay_feed(broot_verfploeter, routing=broot_routing, rounds=1),
        )
        service.ingest()
        status, body = service.app.respond("GET", "/v1/diff", "rounds=1")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "empty-window"

    def test_measurement_id_rollover_mid_stream(
        self, broot_verfploeter, broot_routing, universe, estimate
    ):
        state = build_state(broot_routing, universe, estimate)
        feed = replay_feed(
            broot_verfploeter, routing=broot_routing, rounds=2,
            start_round=65535, batch_size=BATCH,
        )
        assert MappingService(state, feed).ingest() == 2
        view = state.view
        assert [record.round_id for record in view.rounds] == [65535, 65536]
        # Both sides of the 16-bit identifier wrap kept real replies and
        # the post-wrap round matches its batch twin exactly.
        assert all(record.kept > 0 for record in view.rounds)
        scan = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=65536, start_time=900.0,
            wire_level=False,
        )
        assert view.rounds[-1].kept == scan.stats.kept

    def test_poisoned_batch_is_quarantined_not_fatal(
        self, broot_verfploeter, broot_routing, universe, estimate
    ):
        observer = Observer.collecting()
        state = build_state(
            broot_routing, universe, estimate, observer=observer
        )
        events = list(
            replay_feed(
                broot_verfploeter, routing=broot_routing, rounds=1,
                batch_size=BATCH,
            )
        )
        batches = [e for e in events if isinstance(e, ReplyBatch)]
        start = next(e for e in events if isinstance(e, RoundStart))
        state.begin_round(
            start.round_id, start.start_time, set(start.probed_addresses)
        )
        totals_before = len(state._accumulator)
        assert state.ingest_batch((object(),)) is None  # poisoned
        assert len(state._accumulator) == totals_before
        for batch in batches:
            assert state.ingest_batch(batch.replies) is not None
        record = state.end_round()
        assert record.quarantined_batches == 1
        assert state.view.quarantined_batches == 1
        assert record.kept > 0
        assert observer.metrics.value_of("service.quarantined_batches") == 1

    def test_concurrent_queries_match_quiesced_states(
        self, broot_tiny, broot_routing, universe, estimate
    ):
        # Quiesced references: one response per completed-round count.
        reference = Verfploeter(broot_tiny.internet, broot_tiny.service)
        ref_state = build_state(broot_routing, universe, estimate)
        ref_service = MappingService(
            ref_state,
            replay_feed(
                reference, routing=broot_routing, rounds=ROUNDS,
                batch_size=BATCH,
            ),
        )
        legal = {ref_service.app.respond("GET", "/v1/load")}
        for _ in range(ROUNDS):
            ref_service.ingest(max_rounds=1)
            legal.add(ref_service.app.respond("GET", "/v1/load"))

        # Live daemon: hammer /v1/load from reader threads during ingest.
        verfploeter = Verfploeter(broot_tiny.internet, broot_tiny.service)
        state = build_state(broot_routing, universe, estimate)
        service = MappingService(
            state,
            replay_feed(
                verfploeter, routing=broot_routing, rounds=ROUNDS,
                batch_size=1,
            ),
        )
        seen = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                seen.append(service.app.respond("GET", "/v1/load"))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        service.ingest()
        done.set()
        for thread in threads:
            thread.join()
        assert seen
        # Every concurrently observed response is byte-identical to one
        # of the quiesced per-round responses — never a torn view.
        assert set(seen) <= legal
        # And the stream finished on the final quiesced state.
        assert service.app.respond("GET", "/v1/load") in legal

    def test_shutdown_drains_open_round(
        self, broot_verfploeter, broot_routing, universe, estimate
    ):
        state = build_state(broot_routing, universe, estimate)
        round_started = threading.Event()

        def slow_feed():
            for event in replay_feed(
                broot_verfploeter, routing=broot_routing, rounds=ROUNDS,
                batch_size=BATCH,
            ):
                yield event
                if isinstance(event, RoundStart):
                    round_started.set()
                    # Let the main thread request shutdown mid-round.
                    round_started.wait()

        service = MappingService(state, slow_feed())
        service.start_ingest()
        assert round_started.wait(timeout=30.0)
        service.shutdown()
        # The open round was finished and published, never abandoned.
        assert not state.round_open
        assert state.view.rounds_completed >= 1
        assert state.view.rounds_completed < ROUNDS

    def test_state_api_misuse_raises_service_errors(
        self, broot_routing, universe, estimate
    ):
        state = build_state(broot_routing, universe, estimate)
        with pytest.raises(ServiceError):
            state.ingest_batch(())
        with pytest.raises(ServiceError):
            state.end_round()
        state.begin_round(0, 0.0, set())
        with pytest.raises(ServiceError):
            state.begin_round(1, 900.0, set())

    def test_http_server_round_trip(
        self, broot_verfploeter, broot_routing, universe, estimate
    ):
        state = build_state(broot_routing, universe, estimate)
        service = MappingService(
            state,
            replay_feed(broot_verfploeter, routing=broot_routing, rounds=1),
        )
        host, port = service.serve_http()
        try:
            service.ingest()
            with urllib.request.urlopen(
                f"http://{host}:{port}/v1/health", timeout=30
            ) as response:
                assert response.status == 200
                document = json.loads(response.read())
            assert document["rounds_completed"] == 1
        finally:
            service.shutdown()


class TestWsgiLayer:
    def test_unknown_path_and_wrong_method(self):
        app = JsonApp()
        app.get("/v1/thing/<name>", lambda request: {"name": request.params["name"]})
        status, body = app.respond("GET", "/v1/none")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not-found"
        status, body = app.respond("POST", "/v1/thing/x")
        assert status == 405

    def test_path_captures_and_query(self):
        app = JsonApp()
        app.get(
            "/v1/thing/<name>",
            lambda request: {
                "name": request.params["name"],
                "n": request.query_int("n", default=2),
            },
        )
        status, body = app.respond("GET", "/v1/thing/abc", "n=7")
        assert status == 200
        assert json.loads(body) == {"name": "abc", "n": 7}
        status, body = app.respond("GET", "/v1/thing/abc", "n=zzz")
        assert status == 400

    def test_handler_crash_becomes_structured_500(self):
        observer = Observer.collecting()
        app = JsonApp(observer=observer)

        def boom(request):
            raise RuntimeError("kaboom")

        app.get("/v1/boom", boom)
        status, body = app.respond("GET", "/v1/boom")
        assert status == 500
        assert json.loads(body)["error"]["code"] == "internal-error"
        assert observer.metrics.value_of(
            "service.errors", kind="handler"
        ) == 1

    def test_render_json_is_canonical(self):
        assert render_json({"b": 1, "a": [1.5, None]}) == (
            b'{"a":[1.5,null],"b":1}\n'
        )


class TestAccumulatorAndWindowValidation:
    def test_accumulator_rejects_foreign_blocks(self):
        accumulator = CatchmentAccumulator(
            ["A"], np.array([10, 20], dtype=np.uint64)
        )
        with pytest.raises(ConfigurationError):
            accumulator.apply_blocks(
                np.array([15], dtype=np.uint64), np.array([0], dtype=np.int16)
            )

    def test_accumulator_last_write_wins_within_batch(self):
        accumulator = CatchmentAccumulator(
            ["A", "B"], np.array([10, 20], dtype=np.uint64)
        )
        changed = accumulator.apply_blocks(
            np.array([10, 10, 20], dtype=np.uint64),
            np.array([0, 1, 0], dtype=np.int16),
        )
        assert changed == 2
        assert accumulator.site_index_of(10) == 1
        assert accumulator.site_index_of(20) == 0

    def test_window_rejects_mismatched_site_codes(self, served):
        window = LoadWindow(["NOT-A-SITE"], 2)
        with pytest.raises(ConfigurationError):
            window.push(served.state.view.rounds[-1].load)
