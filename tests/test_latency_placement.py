"""Tests for the latency model, RTT capture, and placement analysis."""

from __future__ import annotations

import pytest

from repro.analysis.placement import (
    rtt_summary_by_site,
    suggest_sites,
    underserved_blocks,
)
from repro.errors import ConfigurationError
from repro.icmp.latency import LatencyModel


@pytest.fixture(scope="module")
def latency(broot_tiny):
    return LatencyModel(broot_tiny.internet, broot_tiny.service)


class TestLatencyModel:
    def test_rtt_positive_and_deterministic(self, broot_tiny, latency):
        for block in list(broot_tiny.internet.blocks)[:50]:
            first = latency.rtt_ms(block, "LAX", 0)
            if first is None:
                assert broot_tiny.internet.geodb.locate(block) is None
                continue
            assert first > 0
            assert first == latency.rtt_ms(block, "LAX", 0)

    def test_distance_monotone(self, broot_tiny, latency):
        """Blocks near LAX have lower RTT to LAX than antipodal blocks."""
        near = far = None
        for block in broot_tiny.internet.blocks:
            record = broot_tiny.internet.geodb.locate(block)
            if record is None:
                continue
            if record.country_code == "US" and near is None:
                near = block
            if record.country_code in ("AU", "CN", "IN") and far is None:
                far = block
            if near is not None and far is not None:
                break
        if near is None or far is None:
            pytest.skip("topology lacks the required countries at tiny scale")
        assert latency.propagation_rtt_ms(near, "LAX") < latency.propagation_rtt_ms(
            far, "LAX"
        )

    def test_unknown_site(self, broot_tiny, latency):
        block = list(broot_tiny.internet.blocks)[0]
        assert latency.rtt_ms(block, "XXX") is None

    def test_best_site(self, broot_tiny, latency):
        for block in list(broot_tiny.internet.blocks)[:30]:
            best = latency.best_site_for(block)
            if best is None:
                continue
            rtts = {
                code: latency.rtt_ms(block, code)
                for code in broot_tiny.service.site_codes
            }
            assert best == min(rtts, key=rtts.get)

    def test_access_delay_in_range(self, latency):
        for block in range(100):
            assert 2.0 <= latency.access_delay_ms(block) <= 25.0

    def test_config_validation(self, broot_tiny):
        with pytest.raises(ConfigurationError):
            LatencyModel(broot_tiny.internet, broot_tiny.service, path_stretch=0.5)
        with pytest.raises(ConfigurationError):
            LatencyModel(broot_tiny.internet, broot_tiny.service, jitter_ms=-1)


class TestScanRtts:
    def test_scan_records_rtts(self, broot_scan):
        assert broot_scan.rtts
        assert set(broot_scan.rtts) == set(broot_scan.catchment.blocks())
        for rtt in broot_scan.rtts.values():
            assert rtt > 0

    def test_rtts_geographic(self, broot_tiny, broot_scan):
        """RTTs must be dominated by geography, not uniform noise."""
        import statistics

        us_rtts = []
        far_rtts = []
        for block, rtt in broot_scan.rtts.items():
            record = broot_tiny.internet.geodb.locate(block)
            if record is None:
                continue
            if record.country_code == "US":
                us_rtts.append(rtt)
            elif record.country_code in ("AU", "IN", "CN", "JP", "ID"):
                far_rtts.append(rtt)
        if len(us_rtts) < 3 or len(far_rtts) < 3:
            pytest.skip("not enough blocks per region at tiny scale")
        assert statistics.median(us_rtts) < statistics.median(far_rtts)

    def test_median_rtt_of_site(self, broot_scan):
        for site in broot_scan.catchment.site_codes:
            median = broot_scan.median_rtt_of_site(site)
            if broot_scan.catchment.blocks_of_site(site):
                assert median is not None and median > 0

    def test_rtt_summary(self, broot_scan):
        summary = rtt_summary_by_site(broot_scan)
        for site, (blocks, median) in summary.items():
            assert blocks == len(broot_scan.catchment.blocks_of_site(site))
            assert median > 0


class TestPlacement:
    def test_underserved_blocks_threshold(self, broot_scan):
        strict = underserved_blocks(broot_scan, rtt_threshold_ms=50.0)
        loose = underserved_blocks(broot_scan, rtt_threshold_ms=400.0)
        assert len(loose) <= len(strict)
        for rtt in strict.values():
            assert rtt > 50.0

    def test_suggestions_in_slow_regions(self, broot_tiny, broot_scan):
        suggestions = suggest_sites(
            broot_scan, broot_tiny.internet.geodb, count=3,
            rtt_threshold_ms=150.0,
        )
        assert suggestions
        for suggestion in suggestions:
            assert suggestion.affected_blocks > 0
            assert suggestion.median_rtt_ms > 150.0
            assert -90 <= suggestion.latitude <= 90
            assert -180 <= suggestion.longitude <= 180
        # Weights sorted descending.
        weights = [s.affected_weight for s in suggestions]
        assert weights == sorted(weights, reverse=True)

    def test_no_suggestions_when_all_fast(self, broot_tiny, broot_scan):
        assert suggest_sites(
            broot_scan, broot_tiny.internet.geodb, rtt_threshold_ms=1e9
        ) == []

    def test_count_validated(self, broot_tiny, broot_scan):
        with pytest.raises(ConfigurationError):
            suggest_sites(broot_scan, broot_tiny.internet.geodb, count=0)
