"""Tests for Gao-Rexford propagation."""

from __future__ import annotations

import pytest

from repro.bgp.policy import AnnouncementPolicy
from repro.bgp.propagation import RoutingConfig, compute_routes
from repro.bgp.route import RouteClass
from repro.errors import ConfigurationError, RoutingError


class TestReachability:
    def test_every_as_selects_a_route(self, tiny_internet, two_site_routing):
        assert two_site_routing.reachable_fraction() == 1.0

    def test_every_block_has_a_site(self, tiny_internet, two_site_routing):
        for block in tiny_internet.blocks:
            assert two_site_routing.site_of_block(block) in ("A", "B")

    def test_unknown_block_unmapped(self, two_site_routing):
        assert two_site_routing.site_of_block(12345678) is None

    def test_missing_upstream_raises(self, tiny_internet):
        policy = AnnouncementPolicy.uniform({"X": 999_999})
        with pytest.raises(RoutingError):
            compute_routes(tiny_internet, policy)


class TestGaoRexford:
    def test_upstreams_hold_customer_routes(self, tiny_internet, two_site_routing):
        upstream_a = tiny_internet.find_asn_by_name("UP-A")
        selection = two_site_routing.selection_of(upstream_a)
        assert selection.route_class == RouteClass.CUSTOMER
        assert selection.primary_site == "A"
        assert selection.path_length == 1

    def test_providers_of_upstream_prefer_customer_route(
        self, tiny_internet, two_site_routing
    ):
        upstream_a = tiny_internet.find_asn_by_name("UP-A")
        for provider in tiny_internet.graph.providers_of(upstream_a):
            selection = two_site_routing.selection_of(provider)
            assert selection.route_class == RouteClass.CUSTOMER

    def test_customer_class_sticky_under_prepending(self, tiny_internet):
        """Customer routes beat shorter peer/provider routes (local-pref)."""
        upstream_a = tiny_internet.find_asn_by_name("UP-A")
        policy = AnnouncementPolicy.uniform(
            {
                "A": upstream_a,
                "B": tiny_internet.find_asn_by_name("UP-B"),
            },
            prepends={"A": 5},
        )
        routing = compute_routes(tiny_internet, policy)
        providers = tiny_internet.graph.providers_of(upstream_a)
        # Providers of UP-A hear A's (prepended) route as a customer
        # route; unless they also reach B via a customer chain, they
        # must stick with A despite 5 prepends.
        for provider in providers:
            selection = routing.selection_of(provider)
            if selection.route_class == RouteClass.CUSTOMER:
                customer_sites = {
                    route.site_code for route in selection.candidates
                }
                if customer_sites == {"A"}:
                    assert selection.primary_site == "A"

    def test_path_lengths_monotone_from_origin(self, tiny_internet, two_site_routing):
        upstream_a = tiny_internet.find_asn_by_name("UP-A")
        origin_length = two_site_routing.selection_of(upstream_a).path_length
        for provider in tiny_internet.graph.providers_of(upstream_a):
            assert (
                two_site_routing.selection_of(provider).path_length > origin_length
            )


class TestPrepending:
    def test_prepending_monotone(self, tiny_internet):
        upstreams = {
            "A": tiny_internet.find_asn_by_name("UP-A"),
            "B": tiny_internet.find_asn_by_name("UP-B"),
        }
        fractions = []
        for prepend in range(4):
            policy = AnnouncementPolicy.uniform(upstreams, prepends={"A": prepend})
            catchment = compute_routes(tiny_internet, policy).catchment_map()
            fractions.append(catchment.fraction_of("A"))
        assert all(
            later <= earlier + 1e-9 for earlier, later in zip(fractions, fractions[1:])
        ), f"prepending A should monotonically shrink A: {fractions}"
        assert fractions[3] < fractions[0]

    def test_withdrawing_site_clears_catchment(self, tiny_internet):
        upstreams = {
            "A": tiny_internet.find_asn_by_name("UP-A"),
            "B": tiny_internet.find_asn_by_name("UP-B"),
        }
        policy = AnnouncementPolicy.uniform(upstreams, withdrawn=["A"])
        catchment = compute_routes(tiny_internet, policy).catchment_map()
        assert catchment.fraction_of("B") == 1.0


class TestDeterminismAndStability:
    def test_same_policy_same_catchment(self, tiny_internet):
        upstreams = {
            "A": tiny_internet.find_asn_by_name("UP-A"),
            "B": tiny_internet.find_asn_by_name("UP-B"),
        }
        policy = AnnouncementPolicy.uniform(upstreams)
        first = compute_routes(tiny_internet, policy).catchment_map()
        second = compute_routes(tiny_internet, policy).catchment_map()
        assert dict(first.items()) == dict(second.items())

    def test_round_none_is_flip_free(self, tiny_internet, two_site_routing):
        baseline = two_site_routing.catchment_map()
        again = two_site_routing.catchment_map()
        assert baseline.diff(again).flipped == 0

    def test_catchment_map_memoized_per_round(self, two_site_routing):
        # The outcome is immutable, so repeated calls must return the
        # cached instance (identity proves the block->site dict was not
        # re-derived) while different rounds get their own entries.
        first = two_site_routing.catchment_map(round_id=3)
        second = two_site_routing.catchment_map(round_id=3)
        assert first is second
        assert dict(first.items()) == dict(second.items())
        other_round = two_site_routing.catchment_map(round_id=4)
        assert other_round is not first
        unrounded = two_site_routing.catchment_map()
        assert unrounded is two_site_routing.catchment_map()

    def test_pop_site_within_candidates(self, tiny_internet, two_site_routing):
        for asn in tiny_internet.asns():
            selection = two_site_routing.selection_of(asn)
            for pop in tiny_internet.pops_of_asn(asn):
                site = two_site_routing.site_of_pop(pop)
                assert site in selection.pop_sites or site == selection.primary_site


class TestRoutingConfig:
    def test_rejects_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            RoutingConfig(jitter_weights=(0.5, 0.6))

    def test_rejects_bad_pin(self):
        with pytest.raises(ConfigurationError):
            RoutingConfig(pin_probability=2.0)

    def test_rejects_negative_slack(self):
        with pytest.raises(ConfigurationError):
            RoutingConfig(pop_slack=-1)

    def test_zero_pins_allows_full_shift(self, tiny_internet):
        upstreams = {
            "A": tiny_internet.find_asn_by_name("UP-A"),
            "B": tiny_internet.find_asn_by_name("UP-B"),
        }
        config = RoutingConfig(pin_probability=0.0, jitter_weights=(1.0,))
        heavy = AnnouncementPolicy.uniform(upstreams, prepends={"A": 10})
        catchment = compute_routes(tiny_internet, heavy, config=config).catchment_map()
        no_pin_fraction = catchment.fraction_of("A")
        config_pinned = RoutingConfig(pin_probability=0.5, jitter_weights=(1.0,))
        pinned_catchment = compute_routes(
            tiny_internet, heavy, config=config_pinned
        ).catchment_map()
        # Pinned ASes ignore the prepended length, so A keeps more.
        assert pinned_catchment.fraction_of("A") >= no_pin_fraction
