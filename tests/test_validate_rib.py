"""validate_rib: valley-free best paths and RIB/announcement agreement."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import TopologyError
from repro.netaddr.prefix import Prefix
from repro.topology.validate import validate_rib


def test_computed_routing_is_valid(broot_tiny, broot_routing):
    report = validate_rib(broot_tiny.internet, broot_routing)
    assert report.ok, report.errors


def test_two_site_routing_is_valid(tiny_internet, two_site_routing):
    report = validate_rib(tiny_internet, two_site_routing)
    assert report.ok, report.errors


def test_rib_entries_matching_announcements_pass(broot_tiny, broot_routing):
    internet = broot_tiny.internet
    entries = [(entry.prefix, entry.origin_asn) for entry in internet.announced]
    report = validate_rib(internet, broot_routing, rib_entries=entries)
    assert report.ok, report.errors


def test_unannounced_rib_prefix_is_an_error(broot_tiny, broot_routing):
    internet = broot_tiny.internet
    bogus = Prefix("203.0.113.0", 24)
    assert all(entry.prefix != bogus for entry in internet.announced)
    report = validate_rib(internet, broot_routing, rib_entries=[(bogus, 1)])
    assert not report.ok
    assert "not announced" in report.errors[0]
    with pytest.raises(TopologyError):
        report.raise_if_invalid()


def test_wrong_origin_is_an_error(broot_tiny, broot_routing):
    internet = broot_tiny.internet
    entry = sorted(internet.announced, key=lambda e: e.prefix)[0]
    report = validate_rib(
        internet, broot_routing, rib_entries=[(entry.prefix, entry.origin_asn + 1)]
    )
    assert not report.ok
    assert "originated by" in report.errors[0]


def _fake_routing(site_codes, selections):
    return SimpleNamespace(
        policy=SimpleNamespace(site_codes=tuple(site_codes)),
        selections=selections,
    )


def _fake_selection(asn, site, as_path):
    return SimpleNamespace(asn=asn, primary_site=site, as_path=as_path)


def test_valley_path_is_rejected(tiny_internet):
    graph = tiny_internet.graph
    # Find a stub with two providers: path (provider_a, stub,
    # provider_b, 0) descends into a customer and climbs back out — the
    # canonical valley.
    stub = provider_a = provider_b = None
    for asn in sorted(tiny_internet.ases):
        providers = sorted(graph.providers_of(asn))
        if len(providers) >= 2:
            stub, provider_a, provider_b = asn, providers[0], providers[1]
            break
    assert stub is not None, "topology has no multi-homed AS"
    routing = _fake_routing(
        ["A"],
        {provider_a: _fake_selection(provider_a, "A", (provider_a, stub, provider_b, 0))},
    )
    report = validate_rib(tiny_internet, routing)
    assert not report.ok
    assert "valley-free" in report.errors[0]


def test_non_adjacent_hop_is_rejected(tiny_internet):
    graph = tiny_internet.graph
    ases = sorted(tiny_internet.ases)
    a = ases[0]
    b = next(
        asn for asn in ases if asn != a and not graph.has_link(a, asn)
    )
    routing = _fake_routing(["A"], {a: _fake_selection(a, "A", (a, b, 0))})
    report = validate_rib(tiny_internet, routing)
    assert not report.ok
    assert "no adjacency" in report.errors[0]


def test_undeclared_site_and_unknown_as_are_rejected(tiny_internet):
    routing = _fake_routing(
        ["A"],
        {
            999_999: _fake_selection(999_999, "A", ()),
            sorted(tiny_internet.ases)[0]: _fake_selection(
                sorted(tiny_internet.ases)[0], "NOPE", ()
            ),
        },
    )
    report = validate_rib(tiny_internet, routing)
    assert any("unknown AS" in error for error in report.errors)
    assert any("undeclared site" in error for error in report.errors)
