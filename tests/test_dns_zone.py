"""Tests for zones, the synthetic root, and the root server."""

from __future__ import annotations

import pytest

from repro.dns.message import (
    CLASS_CHAOS,
    CLASS_IN,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    TYPE_A,
    TYPE_NS,
    TYPE_SOA,
    TYPE_TXT,
    DnsMessage,
    DnsRecord,
)
from repro.dns.root import RootServer, build_root_zone
from repro.dns.zone import Zone
from repro.errors import DNSError


@pytest.fixture(scope="module")
def root_zone():
    return build_root_zone()


@pytest.fixture(scope="module")
def server(root_zone):
    return RootServer("LAX", "B.root-servers.net", root_zone)


class TestNewRecordTypes:
    def test_a_roundtrip(self):
        record = DnsRecord.a("a.nic.com", 0xC6120001)
        assert record.a_address() == 0xC6120001

    def test_a_rejects_malformed(self):
        record = DnsRecord("x", TYPE_A, CLASS_IN, 0, b"\x01\x02")
        with pytest.raises(DNSError):
            record.a_address()

    def test_ns_roundtrip(self):
        record = DnsRecord.ns("com", "a.nic.com")
        assert record.ns_target() == "a.nic.com"

    def test_soa_structure(self):
        record = DnsRecord.soa("", "a.example", "host.example", 42)
        assert record.rtype == TYPE_SOA
        assert len(record.rdata) > 20

    def test_authority_section_roundtrip(self):
        message = DnsMessage(
            message_id=1,
            is_response=True,
            authorities=[DnsRecord.ns("com", "a.nic.com")],
        )
        decoded = DnsMessage.decode(message.encode())
        assert len(decoded.authorities) == 1
        assert decoded.authorities[0].ns_target() == "a.nic.com"
        assert decoded.answers == []
        assert decoded.additionals == []


class TestZone:
    def test_requires_soa(self):
        with pytest.raises(DNSError):
            Zone("", DnsRecord.ns("", "a.example"))

    def test_rejects_out_of_zone_record(self):
        zone = Zone("example", DnsRecord.soa("example", "ns.example", "h.example", 1))
        with pytest.raises(DNSError):
            zone.add_record(DnsRecord.ns("other", "ns.other"))

    def test_apex_lookup(self, root_zone):
        answer = root_zone.lookup("", TYPE_NS)
        assert answer.rcode == 0
        assert len(answer.answers) == 2
        assert not answer.is_referral

    def test_referral_for_tld(self, root_zone):
        answer = root_zone.lookup("com", TYPE_NS)
        assert answer.is_referral
        assert {r.ns_target() for r in answer.authorities} == {
            "a.nic.com", "b.nic.com"
        }
        assert answer.additionals  # glue

    def test_referral_below_tld(self, root_zone):
        answer = root_zone.lookup("www.example.com", TYPE_A)
        assert answer.is_referral
        assert all(r.name == "com" for r in answer.authorities)

    def test_nxdomain_for_junk(self, root_zone):
        answer = root_zone.lookup("definitely-not-a-tld", TYPE_A)
        assert answer.rcode == RCODE_NXDOMAIN
        assert answer.authorities[0].rtype == TYPE_SOA

    def test_nodata_at_apex(self, root_zone):
        answer = root_zone.lookup("", TYPE_A)
        assert answer.rcode == 0
        assert not answer.answers
        assert answer.authorities[0].rtype == TYPE_SOA

    def test_country_tlds_delegated(self, root_zone):
        children = root_zone.delegated_children()
        for tld in ("com", "nl", "br", "cn", "jp"):
            assert tld in children

    def test_glue_in_benchmark_range(self, root_zone):
        answer = root_zone.lookup("nl", TYPE_NS)
        for record in answer.additionals:
            address = record.a_address()
            assert 0xC6120000 <= address < 0xC6140000  # 198.18.0.0/15


class TestRootServer:
    def _query(self, name, qtype=TYPE_A, qclass=CLASS_IN):
        return DnsMessage.query(7, name, qtype=qtype, qclass=qclass)

    def test_referral_end_to_end(self, server):
        response = server.handle(self._query("www.example.com"))
        decoded = DnsMessage.decode(response.encode())
        assert decoded.rcode == 0
        assert decoded.authorities
        assert not decoded.authoritative  # referrals are not authoritative

    def test_nxdomain_end_to_end(self, server):
        response = server.handle(self._query("qwerty.invalid-tld-zzz"))
        assert response.rcode == RCODE_NXDOMAIN
        assert response.authoritative

    def test_chaos_identity_still_works(self, server):
        response = server.handle(
            self._query("hostname.bind", qtype=TYPE_TXT, qclass=CLASS_CHAOS)
        )
        assert response.answers[0].txt_strings() == ["lax1.b.root-servers.net"]

    def test_refuses_other_classes(self, server):
        response = server.handle(self._query("com", qclass=7))
        assert response.rcode == RCODE_REFUSED

    def test_good_reply_classification(self, server):
        assert server.is_good_reply(self._query("www.example.com"))
        assert server.is_good_reply(self._query("", qtype=TYPE_NS))
        assert not server.is_good_reply(self._query("junk.zzzzz"))

    def test_deterministic_zone(self):
        first = build_root_zone()
        second = build_root_zone()
        assert first.delegated_children() == second.delegated_children()
        a1 = first.lookup("com", TYPE_NS).additionals
        a2 = second.lookup("com", TYPE_NS).additionals
        assert [r.a_address() for r in a1] == [r.a_address() for r in a2]
