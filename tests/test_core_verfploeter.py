"""Tests for the Verfploeter orchestrator."""

from __future__ import annotations

import pytest

from repro.core.verfploeter import Verfploeter
from repro.errors import ConfigurationError, MeasurementError
from repro.probing.prober import ProberConfig


class TestScan:
    def test_scan_maps_responding_blocks(self, broot_tiny, broot_scan):
        assert broot_scan.mapped_blocks > 0.4 * len(broot_tiny.internet)
        assert broot_scan.stats.kept == broot_scan.mapped_blocks

    def test_scan_matches_ground_truth(self, broot_tiny, broot_routing, broot_scan):
        for block, site in broot_scan.catchment.items():
            assert site == broot_routing.site_of_block(block, broot_scan.round_id)

    def test_cleaning_stats_consistent(self, broot_scan):
        stats = broot_scan.stats
        assert stats.replies_received == (
            stats.kept + stats.duplicates + stats.unsolicited
            + stats.late + stats.wrong_round
        )

    def test_duplicate_rate_near_two_percent(self, broot_scan):
        rate = broot_scan.stats.duplicates / broot_scan.stats.replies_received
        assert 0.002 < rate < 0.08

    def test_response_rate_near_55_percent(self, broot_scan):
        assert 0.40 < broot_scan.stats.response_rate < 0.70

    def test_traffic_volume_estimate(self, broot_scan):
        assert broot_scan.stats.traffic_megabytes == pytest.approx(
            broot_scan.stats.probes_sent * 39 / 1e6
        )

    def test_wire_level_equals_fast_path(self, broot_verfploeter, broot_routing):
        wire = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=3, wire_level=True
        )
        fast = broot_verfploeter.run_scan(
            routing=broot_routing, round_id=3, wire_level=False
        )
        assert dict(wire.catchment.items()) == dict(fast.catchment.items())
        assert wire.stats == fast.stats

    def test_rejects_routing_and_policy(self, broot_verfploeter, broot_routing):
        with pytest.raises(MeasurementError):
            broot_verfploeter.run_scan(
                routing=broot_routing,
                policy=broot_verfploeter.service.default_policy(),
            )

    def test_scan_is_deterministic(self, broot_verfploeter, broot_routing):
        first = broot_verfploeter.run_scan(routing=broot_routing, round_id=9)
        second = broot_verfploeter.run_scan(routing=broot_routing, round_id=9)
        assert dict(first.catchment.items()) == dict(second.catchment.items())

    def test_rounds_differ_by_churn(self, broot_verfploeter, broot_routing):
        first = broot_verfploeter.run_scan(routing=broot_routing, round_id=1)
        second = broot_verfploeter.run_scan(routing=broot_routing, round_id=2)
        diff = first.catchment.diff(second.catchment)
        assert diff.appeared > 0
        assert diff.disappeared > 0
        assert diff.stable > 0.9 * len(first.catchment)


class TestCaptureStyles:
    @pytest.mark.parametrize("style", ["streaming", "lander", "pcap", "pcapbin"])
    def test_styles_agree(self, broot_tiny, broot_routing, style):
        verfploeter = Verfploeter(
            broot_tiny.internet, broot_tiny.service, capture_style=style
        )
        scan = verfploeter.run_scan(routing=broot_routing, wire_level=False)
        assert scan.mapped_blocks > 0
        reference = Verfploeter(broot_tiny.internet, broot_tiny.service).run_scan(
            routing=broot_routing, wire_level=False
        )
        assert dict(scan.catchment.items()) == dict(reference.catchment.items())

    def test_unknown_style_rejected(self, broot_tiny):
        with pytest.raises(ConfigurationError):
            Verfploeter(broot_tiny.internet, broot_tiny.service, capture_style="nfs")


class TestSeries:
    def test_series_round_ids_and_times(self, broot_verfploeter):
        scans = broot_verfploeter.run_series(rounds=3, interval_seconds=900.0)
        assert [scan.round_id for scan in scans] == [0, 1, 2]
        assert [scan.start_time for scan in scans] == [0.0, 900.0, 1800.0]

    def test_series_rejects_zero_rounds(self, broot_verfploeter):
        with pytest.raises(MeasurementError):
            broot_verfploeter.run_series(rounds=0)


class TestConfigValidation:
    def test_source_outside_prefix_rejected(self, broot_tiny):
        with pytest.raises(ConfigurationError):
            Verfploeter(
                broot_tiny.internet,
                broot_tiny.service,
                prober_config=ProberConfig(source_address=0x01020304),
            )
