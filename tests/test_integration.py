"""End-to-end integration tests: the paper's pipelines, miniaturised."""

from __future__ import annotations

import pytest

from repro.core.comparison import compare_coverage
from repro.core.experiments import prepend_sweep, run_stability_series
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.load.prediction import compare_prediction, measured_site_load
from repro.load.weighting import weight_catchment


class TestBRootPipeline:
    """The paper's B-Root study end to end (Tables 4-6)."""

    def test_full_pipeline(self, broot_tiny):
        scenario = broot_tiny
        verfploeter = Verfploeter(scenario.internet, scenario.service)
        routing = verfploeter.routing_for()

        # Table 4: coverage.
        scan = verfploeter.run_scan(routing=routing, dataset_id="SBV")
        atlas = scenario.atlas.measure(routing, scenario.service)
        coverage = compare_coverage(atlas, scan, scenario.internet)
        assert coverage.coverage_ratio > 10
        assert coverage.atlas_overlap_fraction > 0.5

        # Table 5: traffic coverage.
        estimate = LoadEstimate(scenario.day_load("2017-05-15"))
        from repro.analysis.traffic_coverage import traffic_coverage

        traffic = traffic_coverage(scan.catchment, estimate)
        assert 0.6 < traffic.block_coverage < 1.0
        assert 0.5 < traffic.query_coverage < 1.0

        # Table 6: method comparison — load weighting should not move
        # the prediction further from the measured load than the raw
        # block fraction by a wide margin, and both must land within
        # the plausible band.
        predicted = weight_catchment(scan.catchment, estimate)
        measured = measured_site_load(routing, estimate)
        comparison = compare_prediction(predicted, measured)
        assert comparison.max_error() < 0.25
        assert 0.0 < comparison.measured["LAX"] < 1.0

    def test_test_prefix_parallels_service(self, broot_tiny):
        """The paper's pre-deployment trick: measure on a test prefix."""
        from repro.netaddr.prefix import Prefix

        clone = broot_tiny.service.test_prefix_clone(Prefix("199.9.15.0/24"))
        verfploeter = Verfploeter(broot_tiny.internet, clone)
        scan = verfploeter.run_scan(wire_level=False)
        reference = Verfploeter(broot_tiny.internet, broot_tiny.service).run_scan(
            wire_level=False
        )
        # Same sites and announcements, so identical catchments.
        assert dict(scan.catchment.items()) == dict(reference.catchment.items())


class TestTangledPipeline:
    """The paper's Tangled studies (Figures 3, 7-9; Table 7)."""

    @pytest.fixture(scope="class")
    def verfploeter(self, tangled_tiny):
        return Verfploeter(tangled_tiny.internet, tangled_tiny.service)

    def test_nine_site_catchments(self, tangled_tiny, verfploeter):
        scan = verfploeter.run_scan(wire_level=False)
        fractions = scan.catchment.fractions()
        populated = [code for code, value in fractions.items() if value > 0.01]
        assert len(populated) >= 5, f"too few active sites: {fractions}"

    def test_stability_series_shape(self, tangled_tiny, verfploeter):
        series = run_stability_series(verfploeter, rounds=10)
        stable = series.median_of("stable")
        flipped = series.median_of("flipped")
        churn = series.median_of("to_nr")
        assert stable > 0
        # Figure 9 ordering: stable >> churn > flips.
        assert stable > 10 * churn
        assert churn > flipped

    def test_flips_concentrate_in_flipper_ases(self, tangled_tiny, verfploeter):
        series = run_stability_series(verfploeter, rounds=10)
        from repro.analysis.flips import flip_table

        rows = flip_table(series, tangled_tiny.internet, top=5)
        if series.total_flips() >= 10:
            top_names = {row.name.split()[-1] for row in rows[:2]}
            assert top_names & {"CHINANET", "COMCAST", "ITCDELTA", "ALIBABA", "ONO-AS"}

    def test_division_analysis_after_stability_filter(
        self, tangled_tiny, verfploeter
    ):
        from repro.analysis.divisions import multi_site_fraction

        series = run_stability_series(verfploeter, rounds=6)
        stable_catchment = series.stable_catchment()
        fraction = multi_site_fraction(stable_catchment, tangled_tiny.internet)
        assert 0.0 < fraction < 0.5


class TestPrependPipeline:
    def test_sweep_with_atlas_and_load(self, broot_tiny):
        verfploeter = Verfploeter(broot_tiny.internet, broot_tiny.service)
        sweep = prepend_sweep(verfploeter, broot_tiny.atlas)
        estimate = LoadEstimate(broot_tiny.day_load("2017-04-12"))
        from repro.analysis.prepend import hourly_load_by_config

        hourly = hourly_load_by_config(sweep, estimate)
        # More prepending on MIA -> more of every hour's load at LAX.
        lax_by_config = {
            label: sum(series["LAX"]) for label, series in hourly.items()
        }
        assert lax_by_config["+1 LAX"] <= lax_by_config["+3 MIA"]
