"""Fuzz/property tests: parsers must never fail with anything but their
own typed error, and structural invariants must hold for arbitrary input."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anycast.catchment import ArrayCatchmentMap, CatchmentMap
from repro.collector.cleaning import clean_replies
from repro.dns.message import DnsMessage, decode_name
from repro.errors import DNSError, PacketError, ReproError
from repro.icmp.network import DeliveredReply
from repro.icmp.packets import EchoMessage, IPv4Header, parse_packet
from repro.netaddr.prefix import Prefix
from repro.netaddr.sets import PrefixSet
from repro.probing.order import PseudorandomOrder


class TestParserRobustness:
    @given(st.binary(max_size=128))
    def test_dns_decode_total(self, data):
        """Arbitrary bytes: valid message or DNSError, nothing else."""
        try:
            DnsMessage.decode(data)
        except DNSError:
            pass

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=63))
    def test_name_decode_total(self, data, offset):
        try:
            decode_name(data, offset)
        except DNSError:
            pass

    @given(st.binary(max_size=96))
    def test_packet_parse_total(self, data):
        try:
            parse_packet(data)
        except PacketError:
            pass

    @given(st.binary(max_size=40))
    def test_icmp_decode_total(self, data):
        try:
            EchoMessage.decode(data)
        except PacketError:
            pass

    @given(st.binary(max_size=40))
    def test_ipv4_decode_total(self, data):
        try:
            IPv4Header.decode(data)
        except PacketError:
            pass

    @given(st.text(max_size=200))
    def test_dayload_read_total(self, text):
        from repro.errors import DatasetError
        from repro.traffic.logs import DayLoad

        try:
            DayLoad.read_tsv(io.StringIO(text))
        except (DatasetError, ValueError):
            pass

    @given(st.text(max_size=200))
    def test_scan_read_total(self, text):
        from repro.datasets import read_scan

        try:
            read_scan(io.StringIO(text))
        except (ReproError, ValueError):
            pass


@st.composite
def catchment_pairs(draw):
    sites = ["A", "B", "C"]
    blocks = draw(st.lists(st.integers(min_value=0, max_value=500),
                           unique=True, max_size=40))
    first = {b: draw(st.sampled_from(sites)) for b in blocks}
    second = {
        b: draw(st.sampled_from(sites))
        for b in blocks
        if draw(st.booleans())
    }
    return (CatchmentMap(sites, first), CatchmentMap(sites, second))


class TestCatchmentProperties:
    @settings(max_examples=60)
    @given(catchment_pairs())
    def test_diff_partitions_blocks(self, pair):
        earlier, later = pair
        diff = earlier.diff(later)
        assert diff.stable + diff.flipped + diff.disappeared == len(earlier)
        assert diff.stable + diff.flipped + diff.appeared == len(later)

    @settings(max_examples=60)
    @given(catchment_pairs())
    def test_diff_reverse_symmetry(self, pair):
        earlier, later = pair
        forward = earlier.diff(later)
        backward = later.diff(earlier)
        assert forward.stable == backward.stable
        assert forward.flipped == backward.flipped
        assert forward.appeared == backward.disappeared
        assert forward.disappeared == backward.appeared

    @settings(max_examples=60)
    @given(catchment_pairs())
    def test_fractions_sum_to_one(self, pair):
        earlier, _ = pair
        if len(earlier):
            assert sum(earlier.fractions().values()) == pytest.approx(1.0)

    @settings(max_examples=60)
    @given(catchment_pairs())
    def test_array_map_equivalent_to_dict_map(self, pair):
        """Columnar maps agree with the dict reference on arbitrary input,
        including diff counts, flipped-block ordering, and mixed-type diffs."""
        earlier, later = pair
        a_earlier = ArrayCatchmentMap.from_mapping(
            earlier.site_codes, dict(earlier.items())
        )
        a_later = ArrayCatchmentMap.from_mapping(
            later.site_codes, dict(later.items())
        )
        assert dict(a_earlier.items()) == dict(earlier.items())
        assert a_earlier.counts() == earlier.counts()
        assert a_earlier.fractions() == earlier.fractions()
        reference = earlier.diff(later)
        assert a_earlier.diff(a_later) == reference
        assert a_earlier.diff(later) == reference
        assert earlier.diff(a_later) == reference


@st.composite
def aligned_prefix_lists(draw):
    entries = draw(st.lists(
        st.tuples(
            st.integers(min_value=8, max_value=24),
            st.integers(min_value=0, max_value=(1 << 16) - 1),
        ),
        min_size=1, max_size=20,
    ))
    prefixes = []
    for length, seed in entries:
        network = (seed << 16) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
        prefixes.append(Prefix(network, length))
    return prefixes


class TestPrefixSetProperties:
    @settings(max_examples=50)
    @given(aligned_prefix_lists())
    def test_aggregation_preserves_membership(self, prefixes):
        original = PrefixSet(prefixes)
        aggregated = original.aggregated()
        for prefix in prefixes:
            probe = prefix.network + prefix.size // 2
            assert aggregated.covers_address(probe)

    @settings(max_examples=50)
    @given(aligned_prefix_lists())
    def test_aggregation_never_grows(self, prefixes):
        original = PrefixSet(prefixes)
        assert len(original.aggregated()) <= len(original)

    @settings(max_examples=50)
    @given(aligned_prefix_lists())
    def test_aggregation_idempotent(self, prefixes):
        once = PrefixSet(prefixes).aggregated()
        twice = once.aggregated()
        assert sorted(once) == sorted(twice)


class TestCleaningProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["LAX", "MIA"]),
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=0.0, max_value=2000.0,
                          allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_cleaning_is_order_insensitive(self, raw):
        replies = [
            DeliveredReply(site, 0x0A000000 + address, identifier, 0, timestamp)
            for site, address, identifier, timestamp in raw
        ]
        probed = {0x0A000000 + n for n in range(0, 51, 2)}
        forward = clean_replies(replies, probed, 1, 0.0)
        backward = clean_replies(list(reversed(replies)), probed, 1, 0.0)
        assert forward.kept == backward.kept
        assert forward.duplicates == backward.duplicates
        assert forward.unsolicited == backward.unsolicited
        assert forward.late == backward.late

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100),
            max_size=40,
        )
    )
    def test_kept_sources_unique(self, addresses):
        replies = [
            DeliveredReply("LAX", 0x0A000000 + a, 1, 0, float(i))
            for i, a in enumerate(addresses)
        ]
        probed = {0x0A000000 + n for n in range(101)}
        result = clean_replies(replies, probed, 1, 0.0)
        sources = [reply.source_address for reply in result.kept]
        assert len(sources) == len(set(sources))


class TestPermutationProperties:
    @settings(max_examples=20)
    @given(
        st.integers(min_value=1, max_value=100_000),
        st.integers(min_value=0, max_value=(1 << 62)),
    )
    def test_sampled_injectivity_large_domains(self, n, seed):
        order = PseudorandomOrder(n, seed)
        sample = [order.index(i) for i in range(0, n, max(1, n // 64))]
        assert len(sample) == len(set(sample))
        assert all(0 <= value < n for value in sample)


class TestShardPlanProperties:
    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_merge_of_split_is_identity(self, size, shards, seed):
        """Slicing any array by a shard plan and concatenating the
        slices back must reproduce the original buffer bit for bit."""
        from repro.core.sharding import ShardPlan, assert_buffers_equal

        plan = ShardPlan.split(size, shards)
        values = (
            np.arange(size, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            + np.uint64(seed)
        )
        parts = [values[start:stop] for start, stop in plan.bounds]
        merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
        assert_buffers_equal(merged, values)
        assert plan.shard_count == min(shards, size)
        assert sum(plan.sizes()) == size
        assert plan.imbalance() >= 1.0
