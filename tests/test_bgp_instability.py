"""Tests for the flip model."""

from __future__ import annotations

import pytest

from repro.bgp.instability import FlipModel, FlipModelConfig
from repro.bgp.propagation import RouteSelection
from repro.errors import ConfigurationError
from repro.topology.asys import ASTier, AutonomousSystem


def make_selection(alternate="B"):
    return RouteSelection(
        asn=1,
        route_class=0,
        path_length=2,
        primary_site="A",
        candidates=(),
        near_routes=((0, "A"),),
        alternate_site=alternate,
    )


@pytest.fixture
def flipper_as():
    return AutonomousSystem(1, ASTier.TRANSIT, "FLIP", "CN", [0], flipper=True)


@pytest.fixture
def normal_as():
    return AutonomousSystem(2, ASTier.STUB, "CALM", "US", [1], flipper=False)


class TestFlipModel:
    def test_no_alternate_never_flips(self, flipper_as):
        model = FlipModel(seed=1)
        selection = make_selection(alternate=None)
        for round_id in range(50):
            assert model.site_for(flipper_as, selection, "A", 7, round_id) == "A"

    def test_flipper_blocks_flip_sometimes(self, flipper_as):
        model = FlipModel(seed=1, config=FlipModelConfig(
            flipper_block_fraction=1.0, flipper_flip_probability=0.5))
        selection = make_selection()
        outcomes = {
            model.site_for(flipper_as, selection, "A", 7, round_id)
            for round_id in range(100)
        }
        assert outcomes == {"A", "B"}

    def test_nonparticipating_blocks_stay(self, flipper_as):
        model = FlipModel(seed=1, config=FlipModelConfig(flipper_block_fraction=0.0))
        selection = make_selection()
        for round_id in range(50):
            assert model.site_for(flipper_as, selection, "A", 7, round_id) == "A"

    def test_participation_rate(self, flipper_as):
        model = FlipModel(seed=3, config=FlipModelConfig(flipper_block_fraction=0.25))
        rate = sum(
            model.participates(flipper_as, block) for block in range(4000)
        ) / 4000
        assert 0.20 < rate < 0.30

    def test_background_flips_rare(self, normal_as):
        model = FlipModel(seed=1)
        selection = make_selection()
        flips = sum(
            model.site_for(normal_as, selection, "A", block, 1) == "B"
            for block in range(5000)
        )
        assert 0 < flips < 30  # ~0.15% background

    def test_deterministic(self, flipper_as):
        model = FlipModel(seed=9)
        selection = make_selection()
        first = [model.site_for(flipper_as, selection, "A", 7, r) for r in range(20)]
        second = [model.site_for(flipper_as, selection, "A", 7, r) for r in range(20)]
        assert first == second

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FlipModelConfig(flipper_flip_probability=1.5)
