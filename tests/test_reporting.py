"""Tests for the one-shot report generator and its CLI command."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.datasets import read_scan
from repro.reporting import generate_full_report


@pytest.fixture(scope="module")
def report_dir(broot_tiny, tmp_path_factory):
    output = tmp_path_factory.mktemp("report")
    generate_full_report(broot_tiny, output, stability_rounds=6)
    return output


class TestGenerateFullReport:
    def test_writes_report_and_dataset(self, report_dir):
        assert (report_dir / "REPORT.md").exists()
        assert (report_dir / "scan.tsv").exists()

    def test_report_covers_every_experiment(self, report_dir):
        text = (report_dir / "REPORT.md").read_text()
        for marker in (
            "Table 4", "Table 5", "Table 6", "Table 7",
            "Figure 5", "Figure 7", "Figure 8", "Figure 9",
            "coverage map", "Load map", "latency inflation",
        ):
            assert marker in text, f"report missing {marker}"

    def test_dataset_parses_back(self, report_dir, broot_tiny):
        with open(report_dir / "scan.tsv", encoding="utf-8") as stream:
            scan = read_scan(stream)
        assert scan.mapped_blocks > 0
        assert set(scan.catchment.site_codes) == set(
            broot_tiny.service.site_codes
        )

    def test_cli_paper_command(self, tmp_path, capsys):
        outdir = tmp_path / "out"
        code = main([
            "paper", "--scenario", "broot", "--scale", "tiny",
            "--outdir", str(outdir), "--rounds", "4",
        ])
        assert code == 0
        assert (outdir / "REPORT.md").exists()
        assert "wrote" in capsys.readouterr().out

    def test_null_observer_writes_no_sidecars(self, report_dir):
        assert not (report_dir / "metrics.json").exists()
        assert not (report_dir / "trace.json").exists()


class TestObservabilitySidecars:
    @pytest.fixture(scope="class")
    def observed_report(self, broot_tiny, tmp_path_factory):
        from repro.obs import Observer

        output = tmp_path_factory.mktemp("observed-report")
        observer = Observer.collecting()
        generate_full_report(
            broot_tiny, output, stability_rounds=6, observer=observer
        )
        return output, observer

    def test_sidecars_written_and_joinable(self, observed_report):
        import json

        output, _ = observed_report
        metrics = json.loads((output / "metrics.json").read_text())
        trace = json.loads((output / "trace.json").read_text())
        assert metrics["meta"] == trace["meta"]
        meta = metrics["meta"]
        assert meta["scenario"] == "b-root"
        assert meta["scale"] == "tiny"
        assert meta["stability_rounds"] == 6
        assert len(meta["fingerprint"]) == 16

    def test_report_gains_observability_section(self, observed_report):
        output, observer = observed_report
        text = (output / "REPORT.md").read_text()
        assert "Observability" in text
        assert "probe.probes_sent" in text
        meta_fingerprint = text.split("run fingerprint: ")[1].split()[0]
        import json

        sidecar = json.loads((output / "metrics.json").read_text())
        assert sidecar["meta"]["fingerprint"] == meta_fingerprint

    def test_trace_covers_the_experiment_drivers(self, observed_report):
        import json

        output, _ = observed_report
        trace = json.loads((output / "trace.json").read_text())

        def names(spans):
            for span in spans:
                yield span["name"]
                yield from names(span["children"])

        recorded = set(names(trace["spans"]))
        for expected in (
            "experiment.prepend_sweep", "experiment.stability_series",
            "fastscan.round", "load.weight",
        ):
            assert expected in recorded, f"missing span {expected}"
