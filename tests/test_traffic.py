"""Tests for traffic logs and synthetic workloads."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import ConfigurationError, DatasetError
from repro.traffic.ditl import build_day_load
from repro.traffic.logs import DayLoad, HOURS, LoadKind
from repro.traffic.workload import WorkloadProfile, nl_profile, root_profile


def make_day_load():
    blocks = [10, 20, 30]
    queries = np.ones((3, HOURS))
    queries[1] *= 10.0
    return DayLoad("svc", "2017-05-15", blocks, queries,
                   np.array([0.5, 0.4, 0.6]), np.array([1.0, 0.95, 0.9]))


class TestDayLoad:
    def test_totals(self):
        load = make_day_load()
        assert load.total_queries() == pytest.approx(24 * (1 + 10 + 1))
        assert load.mean_qps() == pytest.approx(load.total_queries() / 86400)

    def test_daily_kinds(self):
        load = make_day_load()
        daily = load.daily_of_kind(LoadKind.QUERIES)
        good = load.daily_of_kind(LoadKind.GOOD_REPLIES)
        replies = load.daily_of_kind(LoadKind.ALL_REPLIES)
        assert good[0] == pytest.approx(daily[0] * 0.5)
        assert replies[1] == pytest.approx(daily[1] * 0.95)
        with pytest.raises(DatasetError):
            load.daily_of_kind("bogus")

    def test_queries_of_block(self):
        load = make_day_load()
        assert load.queries_of_block(20) == pytest.approx(240.0)
        assert load.queries_of_block(99) == 0.0

    def test_top_blocks(self):
        load = make_day_load()
        assert load.top_blocks(1)[0][0] == 20

    @pytest.mark.parametrize("kind", ["quicksort", "stable"])
    def test_top_blocks_ties_break_by_block_id(self, kind):
        # Dense ties (three distinct values over 64 blocks) are where
        # an unkeyed argsort falls back to quicksort partition order.
        n = 64
        blocks = list(range(1, n + 1))
        queries = np.zeros((n, HOURS))
        for i in range(n):
            queries[i, 0] = float(i % 3)
        load = DayLoad("svc", "d", blocks, queries, np.ones(n), np.ones(n))
        daily = load.daily_queries()
        # Unique composite key -> the same reference under any kind:
        # load descending, block id ascending.
        reference = np.argsort(daily * -1000.0 + load.blocks, kind=kind)
        expected = [(int(load.blocks[i]), float(daily[i])) for i in reference]
        assert load.top_blocks(n) == expected
        assert [block for block, _ in load.top_blocks(4)] == [3, 6, 9, 12]

    def test_scaled(self):
        load = make_day_load().scaled(2.0)
        assert load.total_queries() == pytest.approx(2 * 24 * 12)
        with pytest.raises(DatasetError):
            load.scaled(0)

    def test_restrict(self):
        load = make_day_load().restrict([10, 30, 999])
        assert len(load) == 2
        assert 20 not in load

    def test_hourly_totals(self):
        totals = make_day_load().hourly_totals()
        assert totals.shape == (HOURS,)
        assert totals[0] == pytest.approx(12.0)

    def test_tsv_roundtrip(self):
        load = make_day_load()
        buffer = io.StringIO()
        load.write_tsv(buffer)
        buffer.seek(0)
        restored = DayLoad.read_tsv(buffer)
        assert restored.service_name == "svc"
        assert restored.date_label == "2017-05-15"
        assert list(restored.blocks) == [10, 20, 30]
        assert restored.total_queries() == pytest.approx(load.total_queries(), rel=1e-3)

    def test_tsv_rejects_missing_header(self):
        with pytest.raises(DatasetError):
            DayLoad.read_tsv(io.StringIO("garbage\n"))

    def test_rejects_unsorted_blocks(self):
        with pytest.raises(DatasetError):
            DayLoad("s", "d", [3, 1], np.ones((2, HOURS)),
                    np.ones(2), np.ones(2))

    def test_rejects_bad_shapes(self):
        with pytest.raises(DatasetError):
            DayLoad("s", "d", [1, 2], np.ones((2, 5)), np.ones(2), np.ones(2))


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", sender_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", resolver_boost=0.5)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", good_reply_low=0.9, good_reply_high=0.2)

    def test_country_accessors(self):
        profile = root_profile()
        assert profile.multiplier_for("IN") > 1.0
        assert profile.multiplier_for("FR") == 1.0
        assert profile.has_sender_override("KR")
        assert not profile.has_sender_override("FR")


class TestBuildDayLoad:
    def test_deterministic(self, tiny_internet):
        first = build_day_load(tiny_internet, root_profile(), "2017-05-15")
        second = build_day_load(tiny_internet, root_profile(), "2017-05-15")
        assert list(first.blocks) == list(second.blocks)
        assert first.total_queries() == second.total_queries()

    def test_day_index_drifts(self, tiny_internet):
        day0 = build_day_load(tiny_internet, root_profile(), "d0", day_index=0)
        day1 = build_day_load(tiny_internet, root_profile(), "d1", day_index=1)
        assert day0.total_queries() != day1.total_queries()
        # But the sender population is identical (same seed).
        assert list(day0.blocks) == list(day1.blocks)

    def test_senders_subset_of_topology(self, tiny_internet):
        load = build_day_load(tiny_internet, root_profile(), "d")
        for block in load.blocks:
            assert tiny_internet.has_block(int(block))

    def test_target_scaling(self, tiny_internet):
        load = build_day_load(
            tiny_internet, root_profile(), "d", target_total_queries=1e6
        )
        assert load.total_queries() == pytest.approx(1e6)

    def test_senders_mostly_ping_responsive(self, tiny_internet):
        load = build_day_load(tiny_internet, root_profile(), "d")
        model = tiny_internet.host_model
        responsive = sum(
            model.is_stable_responder(
                int(block), tiny_internet.country_of_block(int(block))
            )
            for block in load.blocks
        )
        assert responsive / len(load) > 0.8

    def test_diurnal_variation(self, tiny_internet):
        load = build_day_load(tiny_internet, root_profile(), "d")
        totals = load.hourly_totals()
        assert totals.max() > 1.2 * totals.min()

    def test_heavy_tail(self, tiny_internet):
        load = build_day_load(tiny_internet, root_profile(), "d")
        daily = sorted(load.daily_queries(), reverse=True)
        top_decile = sum(daily[: max(1, len(daily) // 10)])
        assert top_decile / sum(daily) > 0.5

    def test_nl_profile_concentrates_in_europe(self, tiny_internet):
        load = build_day_load(tiny_internet, nl_profile(), "d")
        from repro.geo.regions import country_by_code

        europe = 0.0
        total = 0.0
        daily = load.daily_queries()
        for row, block in enumerate(load.blocks):
            country = tiny_internet.country_of_block(int(block))
            total += daily[row]
            if country and country_by_code(country).region == "EU":
                europe += daily[row]
        assert total > 0
        assert europe / total > 0.5
