"""Tests for the analysis modules (tables and figure data)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.catchment_fractions import MethodRow, format_method_table
from repro.analysis.coverage import coverage_rows, format_coverage_table
from repro.analysis.divisions import (
    format_as_division_table,
    format_prefix_division_table,
    multi_site_fraction,
    prefix_site_distribution,
    prefixes_by_sites_seen,
    sites_seen_per_as,
)
from repro.analysis.flips import flip_table, format_flip_table, format_stability_table
from repro.analysis.prepend import (
    format_hourly_load_table,
    format_prepend_table,
    hourly_load_by_config,
    prepend_rows,
)
from repro.analysis.report import render_table
from repro.analysis.traffic_coverage import format_traffic_coverage, traffic_coverage
from repro.anycast.catchment import CatchmentMap
from repro.core.comparison import compare_coverage
from repro.core.experiments import prepend_sweep, run_stability_series
from repro.load.estimator import LoadEstimate


@pytest.fixture(scope="module")
def estimate(broot_tiny):
    return LoadEstimate(broot_tiny.day_load("2017-05-15"))


@pytest.fixture(scope="module")
def atlas_measurement(broot_tiny, broot_routing):
    return broot_tiny.atlas.measure(broot_routing, broot_tiny.service)


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "count"], [("alpha", 10), ("b", 2000)], "T")
        assert "T" in text
        assert "alpha" in text
        assert "2,000" in text

    def test_float_formatting(self):
        text = render_table(["x"], [(0.1234567,), (1234.5,)])
        assert "0.1235" in text
        assert "1,234" in text


class TestCoverageTable:
    def test_rows_shape(self, broot_tiny, broot_scan, atlas_measurement):
        comparison = compare_coverage(atlas_measurement, broot_scan, broot_tiny.internet)
        rows = coverage_rows(comparison)
        assert [row[0] for row in rows] == [
            "considered", "non-responding", "responding",
            "no location", "geolocatable", "unique",
        ]
        text = format_coverage_table(comparison)
        assert "coverage ratio" in text


class TestTrafficCoverage:
    def test_fractions(self, broot_scan, estimate):
        coverage = traffic_coverage(broot_scan.catchment, estimate)
        assert coverage.blocks_seen == coverage.blocks_mapped + coverage.blocks_unmapped
        assert 0.5 < coverage.block_coverage <= 1.0
        assert 0.0 < coverage.query_coverage <= 1.0
        assert "Table 5" in format_traffic_coverage(coverage)

    def test_empty_catchment(self, estimate):
        empty = CatchmentMap(["LAX"], {})
        coverage = traffic_coverage(empty, estimate)
        assert coverage.blocks_mapped == 0
        assert coverage.query_coverage == 0.0


class TestMethodTable:
    def test_format(self):
        rows = [
            MethodRow("2017-05-15", "Atlas", "24 VPs", 0.824),
            MethodRow("2017-05-15", "Verfploeter", "4,321 /24s", 0.878),
        ]
        text = format_method_table(rows, "LAX")
        assert "82.4%" in text
        assert "Verfploeter" in text


class TestFlipTable:
    @pytest.fixture(scope="class")
    def series(self, broot_verfploeter):
        return run_stability_series(broot_verfploeter, rounds=6)

    def test_rows(self, series, broot_tiny):
        rows = flip_table(series, broot_tiny.internet, top=3)
        assert rows[-1].name == "Total"
        assert rows[-2].name == "Other"
        total = rows[-1]
        assert total.flips == series.total_flips()
        ranked = rows[:-2]
        assert all(
            ranked[i].flips >= ranked[i + 1].flips for i in range(len(ranked) - 1)
        )
        if total.flips:
            assert sum(row.fraction for row in rows[:-1]) == pytest.approx(1.0)

    def test_formatting(self, series, broot_tiny):
        text = format_flip_table(flip_table(series, broot_tiny.internet))
        assert "Table 7" in text
        stability_text = format_stability_table(series)
        assert "Figure 9" in stability_text
        assert "medians" in stability_text


class TestDivisions:
    def test_sites_seen_per_as(self, broot_scan, broot_tiny):
        counts = sites_seen_per_as(broot_scan.catchment, broot_tiny.internet)
        assert counts
        assert all(1 <= count <= 2 for count in counts.values())

    def test_multi_site_fraction_range(self, broot_scan, broot_tiny):
        fraction = multi_site_fraction(broot_scan.catchment, broot_tiny.internet)
        assert 0.0 <= fraction <= 1.0

    def test_prefixes_by_sites_seen(self, broot_scan, broot_tiny):
        data = prefixes_by_sites_seen(broot_scan.catchment, broot_tiny.internet)
        assert set(data) <= {1, 2}
        assert all(all(v >= 1 for v in values) for values in data.values())

    def test_prefix_site_distribution(self, broot_scan, broot_tiny):
        distribution = prefix_site_distribution(broot_scan.catchment, broot_tiny.internet)
        for length, bucket in distribution.items():
            assert 8 <= length <= 24
            assert all(sites >= 1 for sites in bucket)

    def test_formatting(self, broot_scan, broot_tiny):
        assert "Figure 7" in format_as_division_table(
            broot_scan.catchment, broot_tiny.internet
        )
        assert "Figure 8" in format_prefix_division_table(
            broot_scan.catchment, broot_tiny.internet
        )


class TestPrepend:
    @pytest.fixture(scope="class")
    def sweep(self, broot_tiny, broot_verfploeter):
        return prepend_sweep(broot_verfploeter, broot_tiny.atlas)

    def test_rows(self, sweep):
        rows = prepend_rows(sweep, "LAX")
        assert len(rows) == 5
        assert all(0.0 <= atlas <= 1.0 and 0.0 <= verf <= 1.0
                   for _, atlas, verf in rows)

    def test_hourly_series(self, sweep, estimate):
        hourly = hourly_load_by_config(sweep, estimate)
        assert set(hourly) == {entry.label for entry in sweep}
        for series in hourly.values():
            total = sum(float(np.sum(values)) for values in series.values())
            assert total == pytest.approx(estimate.total() / 3600.0, rel=1e-6)

    def test_formatting(self, sweep, estimate):
        assert "Figure 5" in format_prepend_table(sweep, "LAX")
        hourly = hourly_load_by_config(sweep, estimate)
        assert "Figure 6" in format_hourly_load_table(hourly, ["LAX", "MIA"])
