"""Tests for the deterministic RNG utilities."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.rng import derive_rng, derive_seed, mix64, splitmix64, uniform_unit


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_label_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit_range(self):
        for label in ("a", "b", "c"):
            assert 0 <= derive_seed(123, label) < (1 << 64)

    def test_derive_rng_streams_independent(self):
        a = derive_rng(5, "alpha")
        b = derive_rng(5, "beta")
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_derive_rng_reproducible(self):
        assert derive_rng(5, "s").random() == derive_rng(5, "s").random()


class TestSplitmix:
    def test_stream_reproducible(self):
        first = [value for value, _ in zip(splitmix64(42), range(10))]
        second = [value for value, _ in zip(splitmix64(42), range(10))]
        assert first == second

    def test_values_64_bit(self):
        for value, _ in zip(splitmix64(7), range(100)):
            assert 0 <= value < (1 << 64)

    def test_mix64_deterministic(self):
        assert mix64(12345) == mix64(12345)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_mix64_in_range(self, value):
        assert 0 <= mix64(value) < (1 << 64)

    def test_mix64_avalanche(self):
        # Flipping one input bit should flip many output bits.
        base = mix64(0x1234)
        flipped = mix64(0x1235)
        assert bin(base ^ flipped).count("1") > 16


class TestUniformUnit:
    def test_range(self):
        for block in range(200):
            value = uniform_unit(1, block)
            assert 0.0 <= value < 1.0

    def test_deterministic(self):
        assert uniform_unit(9, 1, 2) == uniform_unit(9, 1, 2)

    def test_component_sensitivity(self):
        assert uniform_unit(9, 1, 2) != uniform_unit(9, 2, 1)

    def test_roughly_uniform(self):
        values = [uniform_unit(3, i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55
        low = sum(1 for v in values if v < 0.1) / len(values)
        assert 0.05 < low < 0.15
