"""ShardPool: reuse bit-identity, attach caching, clean shutdown errors."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.fastscan import FastScanEngine
from repro.core.pool import ShardPool, run_attached
from repro.core.scenarios import tangled_like
from repro.core.sharding import (
    assert_scan_results_identical,
    assert_site_loads_identical,
    run_sharded_series,
    sharded_weight_catchment,
)
from repro.core.tables import TableStore
from repro.core.verfploeter import Verfploeter
from repro.errors import ConfigurationError, PoolError
from repro.load.estimator import LoadEstimate
from repro.load.weighting import weight_catchment
from repro.obs import Observer


def _engine_for(seed: int) -> FastScanEngine:
    scenario = tangled_like(scale="tiny", seed=seed)
    return FastScanEngine(Verfploeter(scenario.internet, scenario.service))


def _slow_echo(payload):
    time.sleep(0.2)
    return payload


def _touch_then_sleep(payload):
    path, duration = payload
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("running")
    time.sleep(duration)
    return path


class TestPoolReuse:
    @pytest.mark.parametrize("seed", [3, 17, 123])
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_consecutive_series_bit_identical(self, tmp_path, seed, shards):
        engine = _engine_for(seed)
        baseline = engine.run_series(rounds=2, interval_seconds=900.0)
        store = TableStore(root=str(tmp_path))
        with ShardPool(workers=0, store=store) as pool:
            first = run_sharded_series(engine, rounds=2, shards=shards, pool=pool)
            second = run_sharded_series(engine, rounds=2, shards=shards, pool=pool)
        fresh = run_sharded_series(
            engine, rounds=2, shards=shards, workers=0, store=store
        )
        for series in (first, second, fresh):
            for merged, expected in zip(series, baseline):
                assert_scan_results_identical(merged, expected)

    def test_series_then_load_join_on_one_pool(self, tmp_path):
        scenario = tangled_like(scale="tiny", seed=3)
        engine = FastScanEngine(Verfploeter(scenario.internet, scenario.service))
        estimate = LoadEstimate(scenario.day_load("pool-day"))
        baseline = engine.run_series(rounds=2, interval_seconds=900.0)
        expected_load = weight_catchment(baseline[-1].catchment, estimate)
        store = TableStore(root=str(tmp_path))
        with ShardPool(workers=0, store=store) as pool:
            series = run_sharded_series(engine, rounds=2, shards=3, pool=pool)
            load = sharded_weight_catchment(
                series[-1].catchment, estimate, shards=2, pool=pool
            )
        for merged, expected in zip(series, baseline):
            assert_scan_results_identical(merged, expected)
        assert_site_loads_identical(load, expected_load)

    def test_process_pool_reuse_bit_identical(self, tmp_path):
        engine = _engine_for(17)
        baseline = engine.run_series(rounds=2, interval_seconds=900.0)
        store = TableStore(root=str(tmp_path))
        with ShardPool(workers=2, store=store) as pool:
            first = run_sharded_series(engine, rounds=2, shards=2, pool=pool)
            second = run_sharded_series(engine, rounds=2, shards=2, pool=pool)
        for series in (first, second):
            for merged, expected in zip(series, baseline):
                assert_scan_results_identical(merged, expected)

    def test_attach_cache_hits_on_reuse(self, tmp_path):
        engine = _engine_for(3)
        store = TableStore(root=str(tmp_path))
        observer = Observer.collecting()
        with ShardPool(workers=0, store=store, observer=observer) as pool:
            run_sharded_series(
                engine, rounds=1, shards=2, pool=pool, observer=observer
            )
            run_sharded_series(
                engine, rounds=1, shards=2, pool=pool, observer=observer
            )
        metrics = observer.metrics
        # First series: one miss per distinct fingerprint in this
        # process; second series: pure hits.
        assert metrics.value_of("pool.attach.miss") >= 1
        assert metrics.value_of("pool.attach.hit") >= 2
        assert metrics.value_of("pool.tasks") == 4
        assert metrics.value_of("scan.shard.payload_bytes") > 0


class TestPoolLifecycle:
    def test_map_after_shutdown_raises(self, tmp_path):
        pool = ShardPool(workers=0, store=TableStore(root=str(tmp_path)))
        pool.shutdown()
        assert pool.closed
        with pytest.raises(PoolError):
            pool.map(_slow_echo, [1])

    def test_shutdown_mid_use_raises_clean_error(self, tmp_path):
        pool = ShardPool(workers=1, store=TableStore(root=str(tmp_path)))
        # Warm the executor so shutdown has live workers to cancel.
        assert pool.map(_slow_echo, ["warm"]) == ["warm"]
        signal = tmp_path / "first-task-running"
        payloads = [(str(signal), 0.5)] + [
            (str(tmp_path / f"task-{i}"), 0.5) for i in range(5)
        ]
        outcome = {}

        def fan_out():
            try:
                pool.map(_touch_then_sleep, payloads)
                outcome["error"] = None
            except Exception as error:  # noqa: BLE001 - recorded for the main thread's assert
                outcome["error"] = error

        thread = threading.Thread(target=fan_out)
        thread.start()
        try:
            # Shut down only once the first task is provably mid-flight,
            # so later tasks are still pending and must be cancelled.
            deadline = time.monotonic() + 10.0
            while not signal.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert signal.exists(), "first pool task never started"
            pool.shutdown()
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "pool.map hung after shutdown"
            assert isinstance(outcome["error"], PoolError)
        finally:
            pool.shutdown()

    def test_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError):
            ShardPool(workers=-1)

    def test_context_manager_shuts_down(self, tmp_path):
        with ShardPool(workers=0, store=TableStore(root=str(tmp_path))) as pool:
            assert not pool.closed
        assert pool.closed

    def test_run_attached_reports_reuse_and_rss(self):
        result, stats = run_attached(len, [1, 2, 3])
        assert result == 3
        assert stats.max_rss_kb > 0
        # This process has run tasks before (inline pools share the
        # parent cache), so reuse is already true on repeat calls.
        _, again = run_attached(len, [])
        assert again.reused
