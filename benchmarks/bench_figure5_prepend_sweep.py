"""Figure 5: catchment split vs AS-path prepending, both systems.

The paper's traffic-engineering result: prepending shifts the LAX/MIA
split in coarse steps, both measurement systems track the same curve,
and a residue of networks ignores prepending entirely.
"""

from __future__ import annotations

from repro.analysis.prepend import format_prepend_table, prepend_rows
from repro.core.experiments import prepend_sweep


def test_figure5_prepend_sweep(benchmark, broot, broot_vp, broot_sweep):
    sweep = broot_sweep
    benchmark.pedantic(
        lambda: prepend_sweep(broot_vp, broot.atlas, configs=(("equal", {}),)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_prepend_table(sweep, "LAX"))
    print("(paper: ~0.08 at +1 LAX, 0.74 equal, rising to ~0.97 at +3 MIA)")

    rows = prepend_rows(sweep, "LAX")
    verf = [fraction for _, _, fraction in rows]
    atlas = [fraction for _, fraction, _ in rows]
    # Rising along the +1 LAX .. +3 MIA axis.  Multi-exit ASes re-hash
    # their hot-potato picks when path costs change, so a small
    # per-step wobble (a couple of points) is tolerated — the paper's
    # full-scale curve averages this out.
    assert all(a <= b + 0.03 for a, b in zip(verf, verf[1:])), verf
    # Prepending has a real effect end to end.
    assert verf[-1] - verf[0] > 0.2
    # Both ends keep a residue (customer cones / prepend-deaf ASes).
    assert verf[0] > 0.0
    assert verf[-1] < 1.0
    # Atlas tracks Verfploeter within its (small-sample) noise.
    assert max(abs(a - v) for a, v in zip(atlas, verf)) < 0.35
