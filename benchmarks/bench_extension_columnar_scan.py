"""Extension: columnar result layer end-to-end, dict vs array-backed.

The paper's 24-hour stability study is 96 rounds over every responsive
/24; with dict-backed results each round pays a Python loop to
materialise ``{block: site}``/``{block: rtt}`` maps, another to diff
adjacent rounds, and another to join the catchment against the load
estimate.  The columnar layer keeps all three as array passes over one
shared block universe.  This bench times both pipelines at the
``large`` scale — single scan, load weighting, and the full 96-round
series (scans + per-round weighting + stability assembly) — and proves
the speedup buys bit-identical results: same ScanStats, same
catchments, same RTTs, same SiteLoad.  Timings land in
``BENCH_columnar_scan.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.analysis.results import build_stability_series
from repro.core.fastscan import FastScanEngine
from repro.core.scenarios import tangled_like
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN, weight_catchment
from repro.obs import run_metadata

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_columnar_scan.json")

BENCH_SCALE = "large"
ROUNDS = 96  # the paper's full 24-hour series

#: Acceptance floor for the full series pipeline.
MIN_SPEEDUP = 5.0


def _best_of(runner, repeats: int = 3):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner()
        best = min(best, time.perf_counter() - start)
    return best, result


def _series_pipeline(engine: FastScanEngine, estimate: LoadEstimate):
    """Scan ROUNDS rounds, weight every round, assemble the series."""
    scans = engine.run_series(rounds=ROUNDS, interval_seconds=900.0)
    loads = [
        weight_catchment(scan.catchment, estimate, hourly=True)
        for scan in scans
    ]
    series = build_stability_series(scans)
    return scans, loads, series


def _assert_site_loads_equal(site_codes, fast, reference):
    for code in (*site_codes, UNKNOWN):
        assert fast.daily_of(code) == reference.daily_of(code)
        assert np.array_equal(fast.hourly_of(code), reference.hourly_of(code))


def test_extension_columnar_scan(benchmark):
    scenario = tangled_like(scale=BENCH_SCALE)
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    routing = verfploeter.routing_for()
    estimate = LoadEstimate(scenario.day_load("2017-04-12"))
    site_codes = scenario.service.site_codes

    columnar = FastScanEngine(verfploeter, routing, columnar=True)
    reference = FastScanEngine(verfploeter, routing, columnar=False)

    # -- single scan: result materialisation only ---------------------------
    scan_col_seconds, scan_col = _best_of(lambda: columnar.run_scan(round_id=0))
    scan_ref_seconds, scan_ref = _best_of(lambda: reference.run_scan(round_id=0))
    assert scan_col.stats == scan_ref.stats
    assert dict(scan_col.catchment.items()) == dict(scan_ref.catchment.items())
    assert dict(scan_col.rtts.items()) == scan_ref.rtts

    # -- load weighting: one searchsorted+bincount pass vs the block loop ---
    weight_col_seconds, load_col = _best_of(
        lambda: weight_catchment(scan_col.catchment, estimate, hourly=True)
    )
    weight_ref_seconds, load_ref = _best_of(
        lambda: weight_catchment(scan_ref.catchment, estimate, hourly=True)
    )
    _assert_site_loads_equal(site_codes, load_col, load_ref)

    # -- the full 96-round pipeline -----------------------------------------
    series_col_seconds, (scans_col, loads_col, series_col) = _best_of(
        lambda: _series_pipeline(columnar, estimate), repeats=1
    )
    series_ref_seconds, (scans_ref, loads_ref, series_ref) = _best_of(
        lambda: _series_pipeline(reference, estimate), repeats=1
    )

    # Equivalence across the whole series: stats and loads every round,
    # full block-level maps on sampled rounds, identical stability math.
    for fast, slow in zip(scans_col, scans_ref):
        assert fast.stats == slow.stats
    for fast, slow in zip(loads_col, loads_ref):
        _assert_site_loads_equal(site_codes, fast, slow)
    for index in (0, ROUNDS // 2, ROUNDS - 1):
        assert dict(scans_col[index].catchment.items()) == dict(
            scans_ref[index].catchment.items()
        )
        assert dict(scans_col[index].rtts.items()) == scans_ref[index].rtts
    assert series_col.rounds == series_ref.rounds
    assert series_col.flip_counts == series_ref.flip_counts

    scan_speedup = (
        scan_ref_seconds / scan_col_seconds if scan_col_seconds else float("inf")
    )
    weight_speedup = (
        weight_ref_seconds / weight_col_seconds
        if weight_col_seconds
        else float("inf")
    )
    series_speedup = (
        series_ref_seconds / series_col_seconds
        if series_col_seconds
        else float("inf")
    )
    payload = {
        # Same identity block as the reporting sidecars: BENCH timings
        # and trace/metrics JSON of one seeded run join by fingerprint.
        "meta": run_metadata(
            scenario=scenario.name,
            scale=scenario.scale,
            seed=scenario.internet.seed,
        ),
        "scale": BENCH_SCALE,
        "rounds": ROUNDS,
        "blocks": len(verfploeter.hitlist),
        "scan_dict_seconds": round(scan_ref_seconds, 4),
        "scan_columnar_seconds": round(scan_col_seconds, 4),
        "scan_speedup": round(scan_speedup, 2),
        "weight_dict_seconds": round(weight_ref_seconds, 4),
        "weight_columnar_seconds": round(weight_col_seconds, 4),
        "weight_speedup": round(weight_speedup, 2),
        "series_dict_seconds": round(series_ref_seconds, 3),
        "series_columnar_seconds": round(series_col_seconds, 3),
        "series_speedup": round(series_speedup, 2),
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print()
    print(f"columnar results, scale={BENCH_SCALE}, {payload['blocks']} blocks:")
    print(
        f"  single scan        dict {scan_ref_seconds:8.4f} s   "
        f"columnar {scan_col_seconds:8.4f} s   ({scan_speedup:.1f}x)"
    )
    print(
        f"  weight_catchment   dict {weight_ref_seconds:8.4f} s   "
        f"columnar {weight_col_seconds:8.4f} s   ({weight_speedup:.1f}x)"
    )
    print(
        f"  {ROUNDS}-round series    dict {series_ref_seconds:8.3f} s   "
        f"columnar {series_col_seconds:8.3f} s   ({series_speedup:.1f}x)"
    )
    print(f"  (recorded in {os.path.basename(RESULT_PATH)})")

    assert series_speedup >= MIN_SPEEDUP, (
        f"columnar series only {series_speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)"
    )

    benchmark.pedantic(
        lambda: columnar.run_scan(round_id=1), rounds=1, iterations=1
    )
