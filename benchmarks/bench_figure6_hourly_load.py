"""Figure 6: predicted per-site hourly load under prepending configs.

Combines each prepending configuration's catchment with the DITL-style
load (paper: SBV-4-21 catchments x LB-4-12 load) to predict how the
diurnal load curve splits between LAX, MIA, and UNKNOWN.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.prepend import format_hourly_load_table, hourly_load_by_config
from repro.load.weighting import UNKNOWN


def test_figure6_hourly_load(benchmark, broot_sweep, broot_estimate_april):
    hourly = benchmark.pedantic(
        lambda: hourly_load_by_config(broot_sweep, broot_estimate_april),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_hourly_load_table(hourly, ["LAX", "MIA"]))
    print("(paper: +1 LAX sends nearly everything to MIA; each MIA "
          "prepend shifts more load to LAX; UNK stays a small band)")

    def lax_share(label):
        series = hourly[label]
        lax = float(np.sum(series["LAX"]))
        mia = float(np.sum(series["MIA"]))
        return lax / (lax + mia)

    # The LAX share of known load rises along the prepending axis.
    # Unlike raw block counts this is load-weighted, so one heavy
    # resolver block crossing the boundary can wobble a step — require
    # the overall trend plus bounded per-step regression.
    labels = [entry.label for entry in broot_sweep]
    shares = [lax_share(label) for label in labels]
    assert shares[-1] - shares[0] > 0.2, shares
    assert all(a <= b + 0.12 for a, b in zip(shares, shares[1:])), shares

    # UNKNOWN is a minor, config-independent slice.
    for label in labels:
        series = hourly[label]
        total = sum(float(np.sum(v)) for v in series.values())
        unknown = float(np.sum(series[UNKNOWN]))
        assert unknown / total < 0.35

    # Diurnal shape survives the split: per-site hourly curves vary.
    equal = hourly["equal"]["LAX"]
    assert equal.max() > 1.1 * max(equal.min(), 1e-12)
