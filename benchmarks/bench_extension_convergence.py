"""Extension: BGP convergence cost of the paper's prepending experiments.

The paper's traffic engineering (§6.1) is trial and error: announce a
configuration, wait for convergence, measure, repeat.  The event-driven
update simulator quantifies what each trial costs the routing system —
UPDATE messages and selection changes — and cross-checks that the
converged state matches the analytic engine used everywhere else.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.bgp.propagation import RoutingConfig, compute_routes
from repro.bgp.updates import BgpUpdateSimulator
from repro.core.experiments import BROOT_PREPEND_CONFIGS


def test_extension_convergence_cost(benchmark, broot):
    config = RoutingConfig(pin_probability=0.0)
    rows = []
    for label, prepends in BROOT_PREPEND_CONFIGS:
        policy = broot.service.policy(prepends=prepends)
        if label == "equal":
            outcome = benchmark.pedantic(
                lambda p=policy: BgpUpdateSimulator(
                    broot.internet, p, config
                ).run(),
                rounds=1,
                iterations=1,
            )
        else:
            outcome = BgpUpdateSimulator(broot.internet, policy, config).run()
        # Cross-check against the analytic fixed point.
        analytic = compute_routes(broot.internet, policy, config=config)
        for asn in broot.internet.asns():
            a = analytic.selection_of(asn)
            s = outcome.selection_of(asn)
            assert a.route_class == s.route_class
            assert a.path_length == s.cost
        stats = outcome.stats
        rows.append(
            (label, stats.messages, stats.announcements,
             stats.withdrawals, stats.selection_changes)
        )
    print()
    print(render_table(
        ["config", "messages", "announcements", "withdrawals", "changes"],
        rows,
        title="Extension: UPDATE traffic to converge each configuration",
    ))
    print(f"(analytic and event-driven engines agree on all "
          f"{len(broot.internet.ases)} ASes' route class and cost)")
    assert all(row[1] > len(broot.internet.ases) for row in rows)
