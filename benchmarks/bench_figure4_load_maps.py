"""Figure 4: load-weighted geographic maps (B-Root and .nl).

The paper's observations to reproduce: (a) load concentrates in fewer
hotspots than block counts (resolver concentration); unmappable load
(UNK) clusters in Korea/Asia; (b) .nl load is Europe-centric.
"""

from __future__ import annotations

from repro.analysis.maps import load_grid, render_ascii_map, server_load_grid
from repro.load.estimator import LoadEstimate
from repro.load.weighting import UNKNOWN
from repro.rng import mix64


def test_figure4_load_maps(
    benchmark, broot, nl, broot_scan_may, broot_estimate_april
):
    grid = benchmark.pedantic(
        lambda: load_grid(
            broot_scan_may.catchment,
            broot_estimate_april,
            broot.internet.geodb,
            cell_degrees=4.0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("Figure 4a: geographic distribution of B-Root load by site")
    print(render_ascii_map(grid))

    nl_estimate = LoadEstimate(nl.day_load("2017-04-12"))
    nl_grid = server_load_grid(
        nl_estimate,
        nl.internet.geodb,
        server_of_block=lambda block: f"ns{1 + mix64(block) % 4}",
        cell_degrees=4.0,
    )
    print()
    print("Figure 4b: geographic distribution of .nl load by nameserver")
    print(render_ascii_map(nl_grid))

    # Shape: unknown (unmappable) load exists and skews Asian.
    totals = grid.site_totals()
    assert totals.get(UNKNOWN, 0) > 0
    # Load is more concentrated than block counts: top 10 cells carry a
    # large share of total load (resolver hotspots).
    top = sum(cell.total for cell in grid.top_cells(10))
    assert top / sum(totals.values()) > 0.3

    # .nl load is Europe-heavy: most load sits in the north-eastern
    # quadrant cells (lat > 35, lon in [-15, 40]).
    europe = 0.0
    total_nl = 0.0
    for cell in nl_grid.cells():
        lat = cell.lat_index * nl_grid.cell_degrees - 90.0
        lon = cell.lon_index * nl_grid.cell_degrees - 180.0
        total_nl += cell.total
        if lat > 35.0 and -15.0 <= lon <= 40.0:
            europe += cell.total
    assert europe / total_nl > 0.5
