"""Extension: cache-accelerated playbook search vs from-scratch.

The planner evaluates a ~100-config prepend/withdraw lattice.  From
scratch every candidate pays a BGP propagation plus a full scan; with
the shared :class:`~repro.bgp.cache.RoutingCache` (delta-on-miss) and
the planner's per-policy catchment memo, a repeated search — the
"operator replans under the same attack" path, and the reporting
pipeline's — costs almost nothing.  Timings land in
``BENCH_playbook.json`` at the repo root; the run also asserts the
playbook artifact is byte-identical cold vs cold and cold vs warm.
"""

from __future__ import annotations

import json
import os
import time

from repro.bgp.cache import RoutingCache
from repro.core.playbook import PlaybookPlanner, derive_capacities
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.load.weighting import weight_catchment
from repro.obs import run_metadata
from repro.traffic.attack import AttackProfile, compose_attack

from conftest import BENCH_SCALE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_playbook.json")

#: Acceptance floor: the warm (memo + routing cache) search must beat
#: the cold search by at least this factor.
MIN_SPEEDUP = 10.0

ATTACKED = "IAD"
DEPTH = 2
MAX_PREPEND = 3


def _best_of(runner, repeats: int = 3):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_extension_playbook(benchmark, tangled):
    internet = tangled.internet
    service = tangled.service
    day = tangled.day_load("bench-playbook-day")

    def fresh_planner():
        return PlaybookPlanner(
            Verfploeter(internet, service), cache=RoutingCache(maxsize=256)
        )

    # Shared, deterministic inputs (attack + capacities), built once.
    setup = fresh_planner()
    baseline_catchment = setup.catchment_for(service.default_policy())
    baseline_load = weight_catchment(baseline_catchment, LoadEstimate(day))
    profile = AttackProfile(target_site=ATTACKED)
    attack_day, attackers = compose_attack(
        day, baseline_catchment, profile, internet.seed
    )
    estimate = LoadEstimate(attack_day)
    capacities = derive_capacities(baseline_load, service.site_codes)

    def plan_with(planner):
        return planner.plan(
            estimate,
            ATTACKED,
            capacities,
            max_prepend=MAX_PREPEND,
            depth=DEPTH,
            attack=profile,
            attacker_count=len(attackers),
        )

    # -- cold: new planner + new cache every run ---------------------------
    cold_seconds, cold = _best_of(lambda: plan_with(fresh_planner()))

    # -- warm: same planner replans — catchment memo + routing cache hits --
    warm_planner = fresh_planner()
    plan_with(warm_planner)  # prime
    warm_seconds, warm = _best_of(lambda: plan_with(warm_planner))

    # Byte-identity: two cold runs agree, and the warm path must not buy
    # its speed with a different answer.
    cold_again = plan_with(fresh_planner())
    assert cold.to_json() == cold_again.to_json(), "cold search not deterministic"
    assert cold.to_json() == warm.to_json(), "warm search diverged from cold"

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    configs = len(cold.ranked)
    payload = {
        "meta": run_metadata(
            scenario=tangled.name,
            scale=tangled.scale,
            seed=internet.seed,
        ),
        "scale": BENCH_SCALE,
        "attacked_site": ATTACKED,
        "depth": DEPTH,
        "max_prepend": MAX_PREPEND,
        "configs_evaluated": configs,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 6),
        "speedup_warm_vs_cold": round(speedup, 1),
        "top_config": cold.top.entry.label,
        "clears_violations": cold.recommendation.clears_violations,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print()
    print(
        f"playbook search, scale={BENCH_SCALE}, attack on {ATTACKED}, "
        f"{configs} configs:"
    )
    print(f"  cold search (scratch) {cold_seconds:8.3f} s")
    print(f"  warm search (cached)  {warm_seconds:8.5f} s  ({speedup:.0f}x)")
    print(
        f"  top config: {cold.top.entry.label} "
        f"(violations={cold.top.violation_count})"
    )
    print(f"  (recorded in {os.path.basename(RESULT_PATH)})")

    assert speedup >= MIN_SPEEDUP, (
        f"warm search only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x)"
    )

    benchmark.pedantic(
        lambda: plan_with(warm_planner), rounds=1, iterations=1
    )
