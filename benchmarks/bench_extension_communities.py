"""Extension: prepending vs NO_EXPORT communities for draining a site.

Paper §6.1 closes by noting that subtler route control (BGP
communities) needs the same trial-and-error evaluation as prepending.
This bench runs the comparison: how far each mechanism drains MIA, and
what each trial costs the routing system in UPDATE messages.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.bgp.propagation import RoutingConfig
from repro.bgp.updates import BgpUpdateSimulator


def test_extension_communities_vs_prepending(benchmark, broot):
    config = RoutingConfig(pin_probability=0.0)
    base_policy = broot.service.default_policy()
    mia_upstream = broot.service.site("MIA").upstream_asn
    providers = broot.internet.graph.providers_of(mia_upstream)
    peers = broot.internet.graph.peers_of(mia_upstream)

    configs = [
        ("baseline", base_policy),
        ("MIA+1 prepend", base_policy.with_prepend("MIA", 1)),
        ("MIA+3 prepend", base_policy.with_prepend("MIA", 3)),
        ("no-export providers", base_policy.with_no_export("MIA", providers)),
        ("no-export prov+peers",
         base_policy.with_no_export("MIA", providers + peers)),
    ]
    rows = []
    shares = {}
    for label, policy in configs:
        if label == "baseline":
            outcome = benchmark.pedantic(
                lambda p=policy: BgpUpdateSimulator(
                    broot.internet, p, config
                ).run(),
                rounds=1, iterations=1,
            )
        else:
            outcome = BgpUpdateSimulator(broot.internet, policy, config).run()
        fractions = outcome.block_weighted_fractions(broot.internet)
        shares[label] = fractions.get("MIA", 0.0)
        rows.append(
            (label, f"{fractions.get('MIA', 0.0):.3f}", outcome.stats.messages)
        )
    print()
    print(render_table(
        ["mechanism", "MIA share (/24-weighted)", "UPDATE messages"],
        rows,
        title="Extension: draining MIA — prepending vs NO_EXPORT communities",
    ))
    print("(communities give partial drains between 'equal' and heavy "
          "prepending — the finer-grained control the paper alludes to)")
    assert shares["no-export providers"] < shares["baseline"]
    assert shares["MIA+1 prepend"] < shares["baseline"]
    # Widening the community's scope drains further.
    assert shares["no-export prov+peers"] <= shares["no-export providers"]
