"""Extension: observability overhead and artifact determinism.

The whole pipeline is instrumented through ``repro.obs`` observers, and
every instrumented call site defaults to the shared ``NULL_OBSERVER``.
That default must be free: this bench times the vectorised scan under
the null observer against a collecting one, micro-times the null
primitives themselves, and bounds the *disabled* instrumentation cost
of a round — null-call cost x calls per round — at under 2% of the
round's runtime.  It also proves the enabled path's artifacts are
deterministic: two same-seed collecting runs emit byte-identical trace
and metrics JSON.  Timings land in ``BENCH_observability.json`` at the
repo root, carrying the same run-metadata block as the trace/metrics
sidecars so all artifacts of one seeded run join by fingerprint.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.fastscan import FastScanEngine
from repro.core.scenarios import tangled_like
from repro.core.verfploeter import Verfploeter
from repro.obs import NULL_OBSERVER, Observer, run_metadata

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_observability.json")

BENCH_SCALE = "medium"

#: Disabled instrumentation may cost at most this fraction of a round.
MAX_DISABLED_OVERHEAD = 0.02

#: Null observer calls a fastscan round makes (span + profile + six
#: counters); generous so the bound stays conservative as sites grow.
NULL_CALLS_PER_ROUND = 32

MICRO_ITERATIONS = 100_000


def _best_of(runner, repeats: int = 3):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner()
        best = min(best, time.perf_counter() - start)
    return best, result


def _null_call_seconds() -> float:
    """Per-call cost of one null span + one null counter increment."""
    tracer = NULL_OBSERVER.tracer
    metrics = NULL_OBSERVER.metrics
    start = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        with tracer.span("probe"):
            pass
        metrics.counter("probe").inc()
    return (time.perf_counter() - start) / MICRO_ITERATIONS


def _collected_artifacts(scale: str):
    """(trace JSON, metrics JSON) of one fresh seeded collecting run."""
    scenario = tangled_like(scale=scale)
    observer = Observer.collecting()
    verfploeter = Verfploeter(
        scenario.internet, scenario.service, observer=observer
    )
    engine = FastScanEngine(verfploeter)
    engine.run_scan(round_id=0)
    meta = run_metadata(
        scenario=scenario.name,
        scale=scenario.scale,
        seed=scenario.internet.seed,
    )
    return observer.tracer.to_json(meta=meta), observer.metrics.to_json(
        meta=meta
    )


def test_extension_observability(benchmark):
    scenario = tangled_like(scale=BENCH_SCALE)

    # -- end-to-end: the same engine under null vs collecting observers --
    def scan_with(observer):
        verfploeter = Verfploeter(
            scenario.internet, scenario.service, observer=observer
        )
        engine = FastScanEngine(verfploeter)
        return engine.run_scan(round_id=0)

    null_seconds, null_scan = _best_of(lambda: scan_with(NULL_OBSERVER))
    collecting_seconds, collected_scan = _best_of(
        lambda: scan_with(Observer.collecting())
    )
    # Observation must not change the measurement.
    assert null_scan.stats == collected_scan.stats
    assert dict(null_scan.catchment.items()) == dict(
        collected_scan.catchment.items()
    )

    # -- the disabled-path bound: null calls are too cheap to matter ----
    per_call = _null_call_seconds()
    disabled_cost = per_call * NULL_CALLS_PER_ROUND
    disabled_fraction = disabled_cost / null_seconds
    assert disabled_fraction < MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation costs {disabled_fraction:.2%} of a "
        f"round (limit {MAX_DISABLED_OVERHEAD:.0%})"
    )

    # -- determinism: two same-seed collecting runs, identical bytes ----
    assert _collected_artifacts("tiny") == _collected_artifacts("tiny")

    enabled_overhead = (
        (collecting_seconds - null_seconds) / null_seconds
        if null_seconds
        else 0.0
    )
    payload = {
        # Same identity block as the reporting sidecars: BENCH timings
        # and trace/metrics JSON of one seeded run join by fingerprint.
        "meta": run_metadata(
            scenario=scenario.name,
            scale=scenario.scale,
            seed=scenario.internet.seed,
        ),
        "scale": BENCH_SCALE,
        "scan_null_seconds": round(null_seconds, 4),
        "scan_collecting_seconds": round(collecting_seconds, 4),
        "enabled_overhead_fraction": round(enabled_overhead, 4),
        "null_call_nanoseconds": round(per_call * 1e9, 1),
        "disabled_overhead_fraction": round(disabled_fraction, 6),
        "artifacts_deterministic": True,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print()
    print(f"observability overhead, scale={BENCH_SCALE}:")
    print(
        f"  scan  null {null_seconds:8.4f} s   "
        f"collecting {collecting_seconds:8.4f} s   "
        f"(+{enabled_overhead:.1%} when on)"
    )
    print(
        f"  null primitive {per_call * 1e9:6.0f} ns/call -> "
        f"{disabled_fraction:.4%} of a round when off "
        f"(limit {MAX_DISABLED_OVERHEAD:.0%})"
    )
    print(f"  (recorded in {os.path.basename(RESULT_PATH)})")

    benchmark.pedantic(
        lambda: scan_with(NULL_OBSERVER), rounds=1, iterations=1
    )
