"""Ablation: pseudorandom probe order vs sequential.

DESIGN.md decision #2: the Feistel permutation spreads each second's
probes across the address space (paper §3.1 probes "in a pseudorandom
order ... to spread traffic, limiting traffic to any given network").
Sequential probing concentrates whole seconds into single prefixes.
"""

from __future__ import annotations

from repro.probing.hitlist import build_hitlist
from repro.probing.prober import Prober, ProberConfig


def test_ablation_probe_order(benchmark, broot):
    hitlist = build_hitlist(broot.internet)
    rate = 500.0
    prober = Prober(
        hitlist,
        ProberConfig(source_address=broot.service.measurement_address,
                     rate_pps=rate),
        seed=broot.internet.seed,
    )
    schedule = prober.schedule_round(0)
    _, shuffled_worst = benchmark.pedantic(
        lambda: schedule.max_burst_per_prefix(prefix_bits=16),
        rounds=1,
        iterations=1,
    )

    # Sequential baseline: hitlist order at the same rate.
    per_second: dict = {}
    sequential_worst = 0
    for position, entry in enumerate(hitlist):
        key = (int(position / rate), entry.address >> 16)
        per_second[key] = per_second.get(key, 0) + 1
        sequential_worst = max(sequential_worst, per_second[key])

    print()
    print("Ablation: probes landing in one /16 within one second (worst case)")
    print(f"  pseudorandom (Feistel) order: {shuffled_worst}")
    print(f"  sequential order:             {sequential_worst}")
    assert shuffled_worst < sequential_worst / 2
