"""Table 6: LAX catchment share by measurement method and date.

The paper's calibration table: Atlas VPs, Verfploeter /24s (two dates),
load-weighted Verfploeter, and the actual measured load.  The key
findings to reproduce in shape: (1) load weighting moves the estimate
toward the measured value, and (2) routing drift between dates shifts
the raw block fractions.
"""

from __future__ import annotations

from repro.analysis.catchment_fractions import MethodRow, format_method_table
from repro.load.prediction import compare_prediction, measured_site_load
from repro.load.weighting import weight_catchment


def test_table6_percent_lax(
    benchmark,
    broot,
    broot_scan_april,
    broot_scan_may,
    broot_atlas_april,
    broot_atlas_may,
    broot_estimate_april,
    broot_estimate_may,
    broot_routing_may,
):
    predicted = benchmark.pedantic(
        lambda: weight_catchment(broot_scan_may.catchment, broot_estimate_may),
        rounds=1,
        iterations=1,
    )
    measured = measured_site_load(broot_routing_may, broot_estimate_may)
    long_range = weight_catchment(broot_scan_april.catchment, broot_estimate_april)

    rows = [
        MethodRow("2017-04-21", "Atlas",
                  f"{broot_atlas_april.responding_vps} VPs",
                  broot_atlas_april.fraction_of("LAX")),
        MethodRow("2017-05-15", "Atlas",
                  f"{broot_atlas_may.responding_vps} VPs",
                  broot_atlas_may.fraction_of("LAX")),
        MethodRow("2017-04-21", "Verfploeter",
                  f"{broot_scan_april.mapped_blocks} /24s",
                  broot_scan_april.catchment.fraction_of("LAX")),
        MethodRow("2017-05-15", "Verfploeter",
                  f"{broot_scan_may.mapped_blocks} /24s",
                  broot_scan_may.catchment.fraction_of("LAX")),
        MethodRow("2017-05-15", "Verfploeter + load",
                  f"{predicted.total():,.0f} q/day",
                  predicted.fraction_of("LAX")),
        MethodRow("2017-04-21 + LB-4-12", "Verfploeter + load (long range)",
                  f"{long_range.total():,.0f} q/day",
                  long_range.fraction_of("LAX")),
        MethodRow("2017-05-15", "Actual load",
                  f"{measured.total():,.0f} q/day",
                  measured.fraction_of("LAX")),
    ]
    print()
    print(format_method_table(rows, "LAX"))
    comparison = compare_prediction(predicted, measured)
    print(f"same-day prediction error: {comparison.error_of('LAX'):.1%} "
          "(paper: 81.6% predicted vs 81.4% measured)")
    long_error = abs(long_range.fraction_of("LAX") - measured.fraction_of("LAX"))
    print(f"month-old prediction error: {long_error:.1%} "
          "(paper: 76.2% predicted vs 81.6% — stale data is worse)")

    # Shape assertions.
    assert comparison.error_of("LAX") < 0.10
    block_error = abs(
        broot_scan_may.catchment.fraction_of("LAX") - measured.fraction_of("LAX")
    )
    # Load weighting should not be (much) worse than raw block counts,
    # and same-day prediction must beat the month-old one.
    assert comparison.error_of("LAX") <= block_error + 0.05
    assert comparison.error_of("LAX") <= long_error + 0.05
