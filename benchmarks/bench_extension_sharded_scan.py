"""Extension: sharded multiprocess scan at the million-block scale.

The paper's catchment maps cover the whole responsive IPv4 Internet —
millions of /24s — which wants more than one core.  This bench runs
the 24-hour stability series (96 rounds) over the ``xlarge``
``tangled_like`` topology (~1.47M populated blocks), comparing the
vectorised single-process engine against
:func:`repro.core.sharding.run_sharded_series` at 1 worker and at
``min(4, cores)`` workers, plus the sharded load weighting, and
asserting **bit-identical** stats / catchments / RTTs / SiteLoads
throughout (the helpers raise ``EquivalenceError`` on the first
differing byte).  It also measures the memmap table cold-start: the
scenario's round-invariant tables are persisted once through
``core.tables.TableStore`` and re-attached, which must cost
milliseconds, not the seconds of the Python rebuild passes.

Timings land in ``BENCH_sharded_scan.json`` at the repo root.  The
full run is slow (the topology alone takes ~2 minutes to build), so it
hides behind ``REPRO_SHARDED_BENCH=full`` (``make bench-sharded``);
the default smoke mode runs the identical checks at the ``small``
scale — including a real process pool — and writes no JSON, keeping
``make bench`` and CI honest without the wait.  The >=3x speedup floor
applies only when the machine actually has >=4 cores (recorded in the
JSON either way).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.core.fastscan import FastScanEngine
from repro.core.scenarios import tangled_like
from repro.core.sharding import (
    ShardPlan,
    assert_scan_results_identical,
    assert_site_loads_identical,
    run_sharded_series,
    sharded_weight_catchment,
)
from repro.core.tables import (
    TableStore,
    attach_scenario_tables,
    attached_day_load,
    persist_scenario_tables,
)
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.load.weighting import weight_catchment
from repro.obs import run_metadata

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_sharded_scan.json")

FULL = os.environ.get("REPRO_SHARDED_BENCH", "").lower() == "full"
BENCH_SCALE = "xlarge" if FULL else "small"
ROUNDS = 96 if FULL else 6
SHARDS = 4 if FULL else 3
DAY_LABEL = "2017-04-12"
#: Skips the per-block Atlas VP-count pass; the platform is unused here.
VP_COUNT = 9000

#: Acceptance floors (full mode).
MIN_BLOCKS = 1_000_000
MIN_SPEEDUP_AT_4_CORES = 3.0


def _timed(runner):
    """(wall-clock seconds, result) of one call."""
    start = time.perf_counter()
    result = runner()
    return time.perf_counter() - start, result


def test_extension_sharded_scan(benchmark):
    cores = len(os.sched_getaffinity(0))
    pool_workers = min(4, cores) if FULL else 2

    build_seconds, scenario = _timed(
        lambda: tangled_like(scale=BENCH_SCALE, vp_count=VP_COUNT)
    )
    day_seconds, day = _timed(lambda: scenario.day_load(DAY_LABEL))
    estimate = LoadEstimate(day)

    # -- memmap tables: persist once, re-attach in milliseconds -------------
    table_root = tempfile.mkdtemp(prefix="repro-sharded-bench-")
    try:
        store = TableStore(root=table_root)
        persist_seconds, _ = _timed(
            lambda: persist_scenario_tables(store, scenario, day_loads=[day])
        )
        attach_seconds, _ = _timed(lambda: attach_scenario_tables(store, scenario))
        day_attach_seconds, attached_day = _timed(
            lambda: attached_day_load(
                store, scenario, day.service_name, day.date_label
            )
        )
        assert attached_day.total_queries() == day.total_queries()

        verfploeter = Verfploeter(scenario.internet, scenario.service)
        precompute_seconds, engine = _timed(lambda: FastScanEngine(verfploeter))
        blocks = engine.state.rows
        if FULL:
            assert blocks >= MIN_BLOCKS, (
                f"xlarge universe shrank to {blocks} blocks"
            )

        # -- the series: single-process, sharded@1, sharded@N ---------------
        single_seconds, baseline = _timed(
            lambda: engine.run_series(rounds=ROUNDS, interval_seconds=900.0)
        )
        one_seconds, sharded_one = _timed(
            lambda: run_sharded_series(
                engine, rounds=ROUNDS, shards=SHARDS, workers=1
            )
        )
        many_seconds, sharded_many = _timed(
            lambda: run_sharded_series(
                engine, rounds=ROUNDS, shards=SHARDS, workers=pool_workers
            )
        )
        inline_seconds, sharded_inline = _timed(
            lambda: run_sharded_series(
                engine, rounds=ROUNDS, shards=SHARDS, workers=0
            )
        )

        # Bit-identity, every round, every path back to the unsharded engine.
        for merged in (sharded_one, sharded_many, sharded_inline):
            assert len(merged) == ROUNDS
            for got, expected in zip(merged, baseline):
                assert_scan_results_identical(got, expected)

        # -- sharded load weighting ------------------------------------------
        weight_seconds, expected_load = _timed(
            lambda: weight_catchment(baseline[0].catchment, estimate)
        )
        sharded_weight_seconds, actual_load = _timed(
            lambda: sharded_weight_catchment(
                baseline[0].catchment,
                estimate,
                shards=SHARDS,
                workers=pool_workers,
            )
        )
        assert_site_loads_identical(actual_load, expected_load)
    finally:
        shutil.rmtree(table_root, ignore_errors=True)

    speedup = one_seconds / many_seconds if many_seconds else float("inf")
    if FULL and cores >= 4:
        assert speedup >= MIN_SPEEDUP_AT_4_CORES, (
            f"{pool_workers}-worker series only {speedup:.2f}x over 1 worker"
        )
    rebuild_seconds = build_seconds + day_seconds
    attach_total_seconds = attach_seconds + day_attach_seconds

    payload = {
        "meta": run_metadata(
            scenario=scenario.name,
            scale=scenario.scale,
            seed=scenario.internet.seed,
        ),
        "scale": BENCH_SCALE,
        "rounds": ROUNDS,
        "shards": SHARDS,
        "workers": pool_workers,
        "cores": cores,
        "blocks": blocks,
        "build_seconds": round(build_seconds, 3),
        "day_load_seconds": round(day_seconds, 3),
        "precompute_seconds": round(precompute_seconds, 3),
        "tables_persist_seconds": round(persist_seconds, 3),
        "tables_attach_seconds": round(attach_total_seconds, 6),
        "tables_attach_speedup": round(
            rebuild_seconds / attach_total_seconds, 1
        ) if attach_total_seconds else float("inf"),
        "series_single_process_seconds": round(single_seconds, 3),
        "series_sharded_1_worker_seconds": round(one_seconds, 3),
        "series_sharded_n_worker_seconds": round(many_seconds, 3),
        "series_sharded_inline_seconds": round(inline_seconds, 3),
        "series_speedup_vs_1_worker": round(speedup, 2),
        "weight_single_seconds": round(weight_seconds, 4),
        "weight_sharded_seconds": round(sharded_weight_seconds, 4),
        "bit_identical": True,
    }
    if FULL:
        with open(RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    print()
    mode = "full" if FULL else "smoke"
    print(
        f"sharded scan ({mode}), scale={BENCH_SCALE}, {blocks} blocks, "
        f"{ROUNDS} rounds, {SHARDS} shards, {cores} cores:"
    )
    print(f"  single process   {single_seconds:8.3f} s")
    print(f"  sharded @1       {one_seconds:8.3f} s")
    print(
        f"  sharded @{pool_workers}       {many_seconds:8.3f} s   "
        f"({speedup:.2f}x vs 1 worker)"
    )
    print(
        f"  tables: persist {persist_seconds:.3f} s, re-attach "
        f"{attach_total_seconds * 1e3:.2f} ms "
        f"(rebuild was {rebuild_seconds:.1f} s)"
    )
    if FULL:
        print(f"  (recorded in {os.path.basename(RESULT_PATH)})")

    benchmark.pedantic(
        lambda: ShardPlan.split(blocks, SHARDS), rounds=1, iterations=1
    )
