"""Extension: sharded multiprocess scan at the million-block scale.

The paper's catchment maps cover the whole responsive IPv4 Internet —
millions of /24s — which wants more than one core.  This bench runs
the 24-hour stability series (96 rounds) over the ``xlarge``
``tangled_like`` topology (~1.47M populated blocks), comparing the
vectorised single-process engine against
:func:`repro.core.sharding.run_sharded_series` under the zero-copy
protocol: one persistent :class:`repro.core.pool.ShardPool` is shared
across a cold series, a warm reuse series, and the sharded load
weighting, and every path must be **bit-identical** to the unsharded
engine (the helpers raise ``EquivalenceError`` on the first differing
byte).  Worker payloads are ``(store root, fingerprint, bounds,
rounds)`` tuples, so the JSON also records total payload bytes,
attach-cache hits/misses, warm-worker reuse, and parent/worker peak
RSS.  It also measures the memmap table cold-start: the scenario's
round-invariant tables are persisted once through
``core.tables.TableStore`` and re-attached, which must cost
milliseconds, not the seconds of the Python rebuild passes.

Timings land in ``BENCH_sharded_scan.json`` at the repo root.  The
full run is slow (the topology alone takes ~2 minutes to build), so it
hides behind ``REPRO_SHARDED_BENCH=full`` (``make bench-sharded``);
the default smoke mode runs the identical checks at the ``small``
scale — including two series on one real process pool — and writes no
JSON, keeping ``make bench`` and CI honest without the wait.  Full
mode self-checks that the warm 1-worker series stays within 10% of
the inline (workers=0) run and the warm sharded weight join (the
steady state a reused pool gives the planner and daemon) within 1.5x
of the single-process join; the >=3x multi-worker speedup floor applies
only when the machine actually has >=4 cores (recorded in the JSON
either way).
"""

from __future__ import annotations

import json
import os
import resource
import shutil
import tempfile
import time

from repro.core.fastscan import FastScanEngine
from repro.core.pool import ShardPool
from repro.core.scenarios import tangled_like
from repro.core.sharding import (
    ShardPlan,
    assert_scan_results_identical,
    assert_site_loads_identical,
    run_sharded_series,
    sharded_weight_catchment,
)
from repro.core.tables import (
    TableStore,
    attach_scenario_tables,
    attached_day_load,
    persist_scenario_tables,
)
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate
from repro.load.weighting import weight_catchment
from repro.obs import Observer, run_metadata

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_sharded_scan.json")

FULL = os.environ.get("REPRO_SHARDED_BENCH", "").lower() == "full"
BENCH_SCALE = "xlarge" if FULL else "small"
ROUNDS = 96 if FULL else 6
SHARDS = 4 if FULL else 3
DAY_LABEL = "2017-04-12"
#: Skips the per-block Atlas VP-count pass; the platform is unused here.
VP_COUNT = 9000

#: Acceptance floors (full mode).
MIN_BLOCKS = 1_000_000
MIN_SPEEDUP_AT_4_CORES = 3.0
#: Warm 1-worker series must stay within 10% of the inline run: the
#: zero-copy payloads leave only result shipping as per-process cost.
MAX_ONE_WORKER_OVERHEAD = 1.10
#: Warm (pool-reused) sharded weight join vs the single-process join.
MAX_WEIGHT_OVERHEAD = 1.5


def _timed(runner):
    """(wall-clock seconds, result) of one call."""
    start = time.perf_counter()
    result = runner()
    return time.perf_counter() - start, result


def test_extension_sharded_scan(benchmark):
    cores = len(os.sched_getaffinity(0))
    pool_workers = min(4, cores) if FULL else 2

    build_seconds, scenario = _timed(
        lambda: tangled_like(scale=BENCH_SCALE, vp_count=VP_COUNT)
    )
    day_seconds, day = _timed(lambda: scenario.day_load(DAY_LABEL))
    estimate = LoadEstimate(day)

    # -- memmap tables: persist once, re-attach in milliseconds -------------
    table_root = tempfile.mkdtemp(prefix="repro-sharded-bench-")
    try:
        store = TableStore(root=table_root)
        persist_seconds, _ = _timed(
            lambda: persist_scenario_tables(store, scenario, day_loads=[day])
        )
        attach_seconds, _ = _timed(lambda: attach_scenario_tables(store, scenario))
        day_attach_seconds, attached_day = _timed(
            lambda: attached_day_load(
                store, scenario, day.service_name, day.date_label
            )
        )
        assert attached_day.total_queries() == day.total_queries()

        verfploeter = Verfploeter(scenario.internet, scenario.service)
        precompute_seconds, engine = _timed(lambda: FastScanEngine(verfploeter))
        blocks = engine.state.rows
        if FULL:
            assert blocks >= MIN_BLOCKS, (
                f"xlarge universe shrank to {blocks} blocks"
            )

        observer = Observer.collecting()

        # -- the series: single-process, then inline (absorbs the one-time
        # round-state externalisation into the store) --------------------------
        single_seconds, baseline = _timed(
            lambda: engine.run_series(rounds=ROUNDS, interval_seconds=900.0)
        )
        inline_seconds, sharded_inline = _timed(
            lambda: run_sharded_series(
                engine, rounds=ROUNDS, shards=SHARDS, workers=0, store=store
            )
        )

        # -- one persistent pool: cold series, warm reuse series, weighting --
        with ShardPool(
            workers=pool_workers, store=store, observer=observer
        ) as pool:
            cold_seconds, sharded_cold = _timed(
                lambda: run_sharded_series(
                    engine,
                    rounds=ROUNDS,
                    shards=SHARDS,
                    pool=pool,
                    observer=observer,
                )
            )
            warm_seconds, sharded_warm = _timed(
                lambda: run_sharded_series(
                    engine,
                    rounds=ROUNDS,
                    shards=SHARDS,
                    pool=pool,
                    observer=observer,
                )
            )
            weight_seconds, expected_load = _timed(
                lambda: weight_catchment(baseline[0].catchment, estimate)
            )
            # The first join pays the one-time universe/site-column
            # persist and worker attach; the steady state (what the
            # planner's lattice search and the serve daemon's per-round
            # joins hit) is the warm join on the same pool.
            weight_cold_seconds, actual_load = _timed(
                lambda: sharded_weight_catchment(
                    baseline[0].catchment,
                    estimate,
                    shards=SHARDS,
                    pool=pool,
                    observer=observer,
                )
            )
            sharded_weight_seconds, warm_load = _timed(
                lambda: sharded_weight_catchment(
                    baseline[0].catchment,
                    estimate,
                    shards=SHARDS,
                    pool=pool,
                    observer=observer,
                )
            )
            assert_site_loads_identical(warm_load, actual_load)
            worker_rss_kb = pool.max_worker_rss_kb

        # A warm 1-worker series for the overhead floor.  When the
        # persistent pool already ran 1-wide, its warm pass *is* that
        # number; otherwise spin a dedicated pool and discard its cold
        # pass.
        if pool_workers == 1:
            one_seconds, sharded_one = warm_seconds, sharded_warm
        else:
            with ShardPool(
                workers=1, store=store, observer=observer
            ) as pool_one:
                run_sharded_series(
                    engine,
                    rounds=ROUNDS,
                    shards=SHARDS,
                    pool=pool_one,
                    observer=observer,
                )
                one_seconds, sharded_one = _timed(
                    lambda: run_sharded_series(
                        engine,
                        rounds=ROUNDS,
                        shards=SHARDS,
                        pool=pool_one,
                        observer=observer,
                    )
                )
                worker_rss_kb = max(worker_rss_kb, pool_one.max_worker_rss_kb)

        # Bit-identity, every round, every path back to the unsharded engine.
        for merged in (sharded_inline, sharded_cold, sharded_warm, sharded_one):
            assert len(merged) == ROUNDS
            for got, expected in zip(merged, baseline):
                assert_scan_results_identical(got, expected)
        assert_site_loads_identical(actual_load, expected_load)
    finally:
        shutil.rmtree(table_root, ignore_errors=True)

    speedup = one_seconds / warm_seconds if warm_seconds else float("inf")
    if FULL:
        assert one_seconds <= MAX_ONE_WORKER_OVERHEAD * inline_seconds, (
            f"warm 1-worker series {one_seconds:.2f}s exceeds "
            f"{MAX_ONE_WORKER_OVERHEAD:.0%} of inline {inline_seconds:.2f}s"
        )
        assert sharded_weight_seconds <= MAX_WEIGHT_OVERHEAD * weight_seconds, (
            f"warm sharded weight join {sharded_weight_seconds:.3f}s exceeds "
            f"{MAX_WEIGHT_OVERHEAD}x single-process {weight_seconds:.3f}s"
        )
        if cores >= 4:
            assert speedup >= MIN_SPEEDUP_AT_4_CORES, (
                f"{pool_workers}-worker series only {speedup:.2f}x over 1 worker"
            )
    rebuild_seconds = build_seconds + day_seconds
    attach_total_seconds = attach_seconds + day_attach_seconds
    metrics = observer.metrics
    parent_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

    payload = {
        "meta": run_metadata(
            scenario=scenario.name,
            scale=scenario.scale,
            seed=scenario.internet.seed,
        ),
        "scale": BENCH_SCALE,
        "rounds": ROUNDS,
        "shards": SHARDS,
        "workers": pool_workers,
        "cores": cores,
        "blocks": blocks,
        "build_seconds": round(build_seconds, 3),
        "day_load_seconds": round(day_seconds, 3),
        "precompute_seconds": round(precompute_seconds, 3),
        "tables_persist_seconds": round(persist_seconds, 3),
        "tables_attach_seconds": round(attach_total_seconds, 6),
        "tables_attach_speedup": round(
            rebuild_seconds / attach_total_seconds, 1
        ) if attach_total_seconds else float("inf"),
        "series_single_process_seconds": round(single_seconds, 3),
        "series_sharded_inline_seconds": round(inline_seconds, 3),
        "series_sharded_cold_pool_seconds": round(cold_seconds, 3),
        "series_sharded_warm_pool_seconds": round(warm_seconds, 3),
        "series_sharded_1_worker_seconds": round(one_seconds, 3),
        "series_sharded_n_worker_seconds": round(warm_seconds, 3),
        "series_speedup_vs_1_worker": round(speedup, 2),
        "weight_single_seconds": round(weight_seconds, 4),
        "weight_sharded_cold_seconds": round(weight_cold_seconds, 4),
        "weight_sharded_seconds": round(sharded_weight_seconds, 4),
        "payload_bytes": int(metrics.value_of("scan.shard.payload_bytes")),
        "pool_attach_hits": int(metrics.value_of("pool.attach.hit")),
        "pool_attach_misses": int(metrics.value_of("pool.attach.miss")),
        "pool_worker_reuse": int(metrics.value_of("pool.worker.reuse")),
        "pool_tasks": int(metrics.value_of("pool.tasks")),
        "parent_max_rss_kb": parent_rss_kb,
        "worker_max_rss_kb": int(worker_rss_kb),
        "bit_identical": True,
    }
    if FULL:
        with open(RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    print()
    mode = "full" if FULL else "smoke"
    print(
        f"sharded scan ({mode}), scale={BENCH_SCALE}, {blocks} blocks, "
        f"{ROUNDS} rounds, {SHARDS} shards, {cores} cores:"
    )
    print(f"  single process   {single_seconds:8.3f} s")
    print(f"  sharded inline   {inline_seconds:8.3f} s")
    print(f"  pool cold        {cold_seconds:8.3f} s   (@{pool_workers} workers)")
    print(
        f"  pool warm        {warm_seconds:8.3f} s   "
        f"({speedup:.2f}x vs warm 1 worker)"
    )
    print(
        f"  weights: single {weight_seconds:.4f} s, sharded cold "
        f"{weight_cold_seconds:.4f} s / warm {sharded_weight_seconds:.4f} s; "
        f"payloads "
        f"{payload['payload_bytes']} B, attach "
        f"{payload['pool_attach_hits']} hits / "
        f"{payload['pool_attach_misses']} misses"
    )
    print(
        f"  tables: persist {persist_seconds:.3f} s, re-attach "
        f"{attach_total_seconds * 1e3:.2f} ms "
        f"(rebuild was {rebuild_seconds:.1f} s)"
    )
    if FULL:
        print(f"  (recorded in {os.path.basename(RESULT_PATH)})")

    benchmark.pedantic(
        lambda: ShardPlan.split(blocks, SHARDS), rounds=1, iterations=1
    )
