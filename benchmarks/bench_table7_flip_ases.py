"""Table 7: top ASes involved in catchment flips.

Paper: 63% of flips come from only 5 ASes, 51% from Chinanet alone —
instability is rare but persistent in specific networks.
"""

from __future__ import annotations

from repro.analysis.flips import flip_table, format_flip_table


def test_table7_flip_ases(benchmark, tangled, tangled_series):
    rows = benchmark.pedantic(
        lambda: flip_table(tangled_series, tangled.internet, top=5),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_flip_table(rows))
    print("(paper: top-5 ASes carry 63% of flips; Chinanet alone 51%)")

    total = rows[-1]
    assert total.flips > 0, "no flips observed; increase rounds"
    top5_fraction = sum(row.fraction for row in rows[:-2])
    assert top5_fraction > 0.4, f"flips not concentrated: {top5_fraction:.2f}"
    # The seeded Chinanet-like giant should rank at/near the top.
    top_names = [row.name for row in rows[:2]]
    assert any("CHINANET" in name for name in top_names)
