"""Micro-benchmarks of the core data structures.

Not a paper experiment — performance regression tracking for the pieces
every scan leans on: LPM trie lookups, the Feistel permutation, the
Internet checksum, route propagation, and the vectorised round.
"""

from __future__ import annotations

import numpy as np

from repro.bgp.propagation import compute_routes
from repro.core.fastscan import FastScanEngine
from repro.core.verfploeter import Verfploeter
from repro.icmp.packets import build_probe, internet_checksum, parse_packet
from repro.netaddr.prefix import Prefix
from repro.netaddr.trie import LongestPrefixTrie
from repro.probing.order import PseudorandomOrder
from repro.rng import uniform_unit_np


def test_micro_trie_lookup(benchmark, broot):
    trie: LongestPrefixTrie = LongestPrefixTrie()
    for entry in broot.internet.announced:
        trie.insert(entry.prefix, entry.origin_asn)
    addresses = [(block << 8) | 1 for block in list(broot.internet.blocks)[:1000]]

    def lookup_all():
        return sum(1 for a in addresses if trie.lookup_value(a) is not None)

    hits = benchmark(lookup_all)
    assert hits == len(addresses)


def test_micro_feistel_permutation(benchmark):
    order = PseudorandomOrder(10_000, 7)

    def walk():
        return sum(order.index(i) for i in range(0, 10_000, 10))

    total = benchmark(walk)
    assert total > 0


def test_micro_checksum_and_parse(benchmark):
    packets = [
        build_probe(0x0A000001, 0xC0000200 + i, i & 0xFFFF, i & 0xFFFF)
        for i in range(200)
    ]

    def parse_all():
        return sum(parse_packet(p)[1].sequence for p in packets)

    benchmark(parse_all)
    assert internet_checksum(b"\x00\x00") == 0xFFFF


def test_micro_route_propagation(benchmark, broot):
    policy = broot.service.default_policy()
    outcome = benchmark(lambda: compute_routes(broot.internet, policy))
    assert outcome.reachable_fraction() == 1.0


def test_micro_vectorised_round(benchmark, broot, broot_vp, broot_routing_may):
    engine = FastScanEngine(broot_vp, broot_routing_may)
    scan = benchmark(lambda: engine.run_scan(round_id=5))
    assert scan.mapped_blocks > 0


def test_micro_vectorised_rng(benchmark):
    blocks = np.arange(100_000, dtype=np.uint64)

    def draw():
        return float(uniform_unit_np(1, 0x1234, blocks, 7).sum())

    total = benchmark(draw)
    assert 45_000 < total < 55_000  # mean ~0.5
