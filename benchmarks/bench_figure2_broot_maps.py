"""Figure 2: geographic coverage of B-Root, Atlas vs Verfploeter.

The paper's maps show Atlas dense only in Europe/North America while
Verfploeter covers the populated globe at ~1000x the observation count.
Rendered here as ASCII maps over 2-degree bins.
"""

from __future__ import annotations

from repro.analysis.maps import atlas_grid, catchment_grid, render_ascii_map


def test_figure2_broot_maps(
    benchmark, broot, broot_scan_may, broot_atlas_may
):
    verf_grid = benchmark.pedantic(
        lambda: catchment_grid(
            broot_scan_may.catchment, broot.internet.geodb, cell_degrees=4.0
        ),
        rounds=1,
        iterations=1,
    )
    atlas = atlas_grid(broot_atlas_may, cell_degrees=4.0)
    print()
    print("Figure 2a: RIPE Atlas coverage of B-Root")
    print(render_ascii_map(atlas))
    print()
    print("Figure 2b: Verfploeter coverage of B-Root")
    print(render_ascii_map(verf_grid))
    atlas_total = sum(atlas.site_totals().values())
    verf_total = sum(verf_grid.site_totals().values())
    print(f"observations: Atlas={atlas_total:.0f} VPs, "
          f"Verfploeter={verf_total:.0f} /24s "
          f"({verf_total / max(atlas_total, 1):.0f}x)")

    # Shape: Verfploeter populates far more of the world.
    assert len(verf_grid) > 3 * len(atlas)
    assert verf_total > 50 * atlas_total
