"""Table 2: load datasets (queries/day and queries/s).

Regenerates the paper's day-long load datasets: B-Root before anycast
(one site), B-Root after (split across LAX/MIA), and the .nl-style
regional workload.  Benchmarks day-load generation.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.load.estimator import LoadEstimate
from repro.load.prediction import measured_site_load
from repro.traffic.ditl import build_day_load


def test_table2_load_datasets(
    benchmark, broot, nl, broot_routing_may, broot_load_april, broot_load_may
):
    rebuilt = benchmark.pedantic(
        lambda: build_day_load(
            broot.internet, broot.profile, "2017-05-15", day_index=1
        ),
        rounds=1,
        iterations=1,
    )
    assert len(rebuilt) > 0

    per_site = measured_site_load(broot_routing_may, LoadEstimate(broot_load_may))
    nl_load = nl.day_load("2017-04-12", target_total_queries=0.3e6)
    rows = [
        ("LB-4-12", "B-Root", "2017-04-12", "LAX (unicast)",
         broot_load_april.total_queries(), broot_load_april.mean_qps()),
        ("LB-5-15", "B-Root", "2017-05-15", "both",
         broot_load_may.total_queries(), broot_load_may.mean_qps()),
        ("", "", "", "LAX",
         per_site.daily_of("LAX"), per_site.daily_of("LAX") / 86400.0),
        ("", "", "", "MIA",
         per_site.daily_of("MIA"), per_site.daily_of("MIA") / 86400.0),
        ("LN-4-12", "NL ccTLD", "2017-04-12", "all",
         nl_load.total_queries(), nl_load.mean_qps()),
    ]
    print()
    print(render_table(
        ["Id", "Service", "Date", "Site", "q/day", "q/s"],
        rows,
        title="Table 2: load datasets (scaled ~1000x down from 2.2G q/day)",
    ))
    assert per_site.daily_of("LAX") > per_site.daily_of("MIA") * 0.1
