"""Ablation: load-weighted vs raw-block-count catchment predictions.

DESIGN.md decision #4 / paper Table 6: raw block fractions misestimate
per-site load because blocks differ enormously in query volume; the
paper concludes "weighting by load is important".  This bench measures
both errors against the ground-truth load split.
"""

from __future__ import annotations

from repro.load.prediction import measured_site_load
from repro.load.weighting import weight_catchment


def test_ablation_load_weighting(
    benchmark, broot_scan_may, broot_estimate_may, broot_routing_may
):
    predicted = benchmark.pedantic(
        lambda: weight_catchment(broot_scan_may.catchment, broot_estimate_may),
        rounds=1,
        iterations=1,
    )
    measured = measured_site_load(broot_routing_may, broot_estimate_may)

    actual_lax = measured.fraction_of("LAX")
    weighted_lax = predicted.fraction_of("LAX")
    blocks_lax = broot_scan_may.catchment.fraction_of("LAX")
    weighted_error = abs(weighted_lax - actual_lax)
    blocks_error = abs(blocks_lax - actual_lax)

    print()
    print("Ablation: predicting the LAX load share")
    print(f"  actual load share:            {actual_lax:.3f}")
    print(f"  load-weighted prediction:     {weighted_lax:.3f} "
          f"(error {weighted_error:.3f})")
    print(f"  raw block-count prediction:   {blocks_lax:.3f} "
          f"(error {blocks_error:.3f})")
    print("  (paper: 81.6% weighted vs 87.8% raw vs 81.4% actual)")

    # The weighted prediction must be close in absolute terms; the raw
    # block count has no such guarantee (and the gap between the two
    # is the paper's point).
    assert weighted_error < 0.10
    assert abs(weighted_lax - blocks_lax) > 0.005
