"""Extension: paper-scale measurement throughput.

The paper probes 6.4M /24s per round and runs 96 rounds in a day.  The
vectorised engine makes that measurement cadence reachable in
simulation: this bench runs the full 96-round series on the ``large``
topology and reports per-round block throughput.
"""

from __future__ import annotations

import time

from repro.core.fastscan import FastScanEngine
from repro.core.scenarios import tangled_like
from repro.core.verfploeter import Verfploeter


def test_extension_paper_scale_series(benchmark):
    scenario = tangled_like(scale="large")
    verfploeter = Verfploeter(scenario.internet, scenario.service)
    engine = FastScanEngine(verfploeter)

    def full_day():
        return engine.run_series(rounds=96, interval_seconds=900.0)

    start = time.perf_counter()
    scans = benchmark.pedantic(full_day, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    blocks = scans[0].stats.probes_sent
    total_probes = blocks * len(scans)
    print()
    print(f"Extension: 96-round day over {blocks:,} /24s "
          f"({total_probes:,} probes) in {elapsed:.1f}s "
          f"({total_probes / elapsed / 1e6:.1f}M probes/s simulated)")
    print("(paper: 6.4M /24s per round, 96 rounds — ~614M probes/day)")
    assert len(scans) == 96
    assert scans[0].mapped_blocks > 0.4 * blocks
    # Consecutive rounds stay overwhelmingly stable.
    diff = scans[0].catchment.diff(scans[1].catchment)
    assert diff.stable > 0.9 * scans[0].mapped_blocks
