"""Table 3: anycast sites of B-Root and Tangled.

Regenerates the site inventory and benchmarks scenario assembly.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.scenarios import tangled_like


def test_table3_sites(benchmark, broot, tangled):
    rebuilt = benchmark.pedantic(
        lambda: tangled_like(scale="tiny"), rounds=1, iterations=1
    )
    assert len(rebuilt.service.sites) == 9

    rows = []
    for scenario in (broot, tangled):
        for site in scenario.service.sites:
            upstream = scenario.internet.ases[site.upstream_asn]
            rows.append(
                (
                    scenario.service.name,
                    f"{site.country_code}, {site.name}",
                    upstream.name,
                    f"AS{site.upstream_asn}",
                )
            )
    print()
    print(render_table(
        ["Service", "Location", "Host/upstream", "ASN"],
        rows,
        title="Table 3: anycast sites used in the measurements",
    ))
    assert len(rows) == 11  # 2 B-Root + 9 Tangled
