"""Table 5: share of the service's real traffic Verfploeter can map.

Paper: 87.1% of traffic-sending blocks (82.4% of queries) are mappable;
the rest (concentrated in Korea and parts of Asia) never answer pings.
"""

from __future__ import annotations

from repro.analysis.traffic_coverage import format_traffic_coverage, traffic_coverage


def test_table5_traffic_coverage(benchmark, broot_scan_may, broot_estimate_may):
    coverage = benchmark.pedantic(
        lambda: traffic_coverage(broot_scan_may.catchment, broot_estimate_may),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_traffic_coverage(coverage))
    print("(paper: 87.1% of blocks, 82.4% of queries mapped)")
    assert 0.70 < coverage.block_coverage < 0.95
    assert 0.65 < coverage.query_coverage < 0.95
    # Unmappable blocks are traffic-heavy (NAT regions), so query
    # coverage must not exceed block coverage by much.
    assert coverage.query_coverage < coverage.block_coverage + 0.05
