"""Figure 3: catchments of the nine-site Tangled testbed.

With more sites the density advantage matters more: only Verfploeter
shows which site serves China, and the mix outside Europe differs
qualitatively between the two systems.
"""

from __future__ import annotations

from repro.analysis.maps import atlas_grid, catchment_grid, render_ascii_map


def test_figure3_tangled_maps(benchmark, tangled, tangled_vp):
    routing = tangled_vp.routing_for()
    scan = benchmark.pedantic(
        lambda: tangled_vp.run_scan(
            routing=routing, dataset_id="STV-2-01", wire_level=False
        ),
        rounds=1,
        iterations=1,
    )
    measurement = tangled.atlas.measure(routing, tangled.service)
    verf_grid = catchment_grid(scan.catchment, tangled.internet.geodb, 4.0)
    atlas = atlas_grid(measurement, 4.0)
    print()
    print("Figure 3a: RIPE Atlas coverage of Tangled")
    print(render_ascii_map(atlas))
    print()
    print("Figure 3b: Verfploeter coverage of Tangled")
    print(render_ascii_map(verf_grid))
    print("site shares (Verfploeter /24s):",
          {k: round(v, 3) for k, v in sorted(scan.catchment.fractions().items())})

    # Shape: several sites active; Verfploeter sees more sites than Atlas.
    verf_sites = {site for site, total in verf_grid.site_totals().items() if total}
    atlas_sites = {site for site, total in atlas.site_totals().items() if total}
    assert len(verf_sites) >= len(atlas_sites)
    assert len(verf_sites) >= 5
