"""Figure 7: sites seen per AS vs announced prefixes.

Paper: ~12.7% of ASes are served by more than one site, and ASes that
announce more prefixes tend to see more sites (hot-potato splits in
big networks).  Uses the stability-filtered catchment (§6.2 removes
flipping VPs first).
"""

from __future__ import annotations

from repro.analysis.divisions import (
    format_as_division_table,
    multi_site_fraction,
    prefixes_by_sites_seen,
)


def test_figure7_as_divisions(benchmark, tangled, tangled_series):
    stable = tangled_series.stable_catchment()
    data = benchmark.pedantic(
        lambda: prefixes_by_sites_seen(stable, tangled.internet),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_as_division_table(stable, tangled.internet))
    print("(paper: 12.7% of ASes see multiple sites; more announced "
          "prefixes -> more sites)")

    fraction = multi_site_fraction(stable, tangled.internet)
    assert 0.02 < fraction < 0.40

    # Median announced prefixes should not decrease with sites seen.
    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    buckets = sorted(data)
    if len(buckets) >= 2:
        low = median(data[buckets[0]])
        high = median(data[buckets[-1]])
        assert high >= low
