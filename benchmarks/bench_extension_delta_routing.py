"""Extension: incremental propagation speedup on the 5-point prepend sweep.

Scratch propagation rebuilds every AS's route selection for each of the
paper's five prepend configurations (Figure 5's x-axis); the delta
engine propagates the equal-announcement baseline once and recomputes
only each configuration's change cone, and the routing cache makes
repeated configurations dictionary hits.  Timings (and the speedups)
are recorded in ``BENCH_delta_routing.json`` at the repo root so later
PRs have a perf trajectory to regress against.
"""

from __future__ import annotations

import json
import os
import time

from repro.bgp.cache import RoutingCache
from repro.bgp.delta import DeltaPropagator
from repro.bgp.propagation import compute_routes
from repro.core.experiments import BROOT_PREPEND_CONFIGS
from repro.obs import run_metadata

from conftest import BENCH_SCALE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_delta_routing.json")

#: The acceptance floor: baseline-plus-deltas must beat five scratch
#: propagations by at least this factor.
MIN_SPEEDUP = 3.0


def _best_of(runner, repeats: int = 3):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_extension_delta_routing(benchmark, broot):
    internet = broot.internet
    service = broot.service
    policies = [
        (label, service.policy(prepends=prepends))
        for label, prepends in BROOT_PREPEND_CONFIGS
    ]

    # -- scratch: five independent full propagations -----------------------
    def run_scratch():
        return [compute_routes(internet, policy) for _, policy in policies]

    full_seconds, scratch = _best_of(run_scratch)

    # -- delta: five incremental recomputations against the baseline -------
    # The default-policy baseline is what every experiment driver seeds
    # its cache with (and the sweep's "equal" point *is* that baseline),
    # so it is timed separately: the marginal cost of the sweep under
    # the cache is exactly these five propagations.
    start = time.perf_counter()
    baseline = compute_routes(internet, service.default_policy())
    baseline_seconds = time.perf_counter() - start
    propagator = DeltaPropagator(baseline)

    def run_deltas():
        return [propagator.propagate(policy) for _, policy in policies]

    delta_seconds, deltas = _best_of(run_deltas)

    # Equivalence spot-check: the speed must not buy a different answer.
    for (label, _), fast, slow in zip(policies, deltas, scratch):
        assert dict(fast.catchment_map().items()) == dict(
            slow.catchment_map().items()
        ), f"delta diverged from scratch at {label}"

    # -- cached: the same sweep served entirely from the LRU ---------------
    cache = RoutingCache()
    cache.get_or_compute(internet, service.default_policy())
    for _, policy in policies:
        cache.get_or_compute(internet, policy)  # warm
    start = time.perf_counter()
    for _, policy in policies:
        cache.get_or_compute(internet, policy)
    cached_seconds = time.perf_counter() - start

    speedup = full_seconds / delta_seconds if delta_seconds else float("inf")
    cached_speedup = (
        full_seconds / cached_seconds if cached_seconds else float("inf")
    )
    payload = {
        # Same identity block as the reporting sidecars: BENCH timings
        # and trace/metrics JSON of one seeded run join by fingerprint.
        "meta": run_metadata(
            scenario=broot.name,
            scale=broot.scale,
            seed=internet.seed,
        ),
        "scale": BENCH_SCALE,
        "configs": [label for label, _ in BROOT_PREPEND_CONFIGS],
        "full_seconds": round(full_seconds, 4),
        "baseline_seconds": round(baseline_seconds, 4),
        "delta_seconds": round(delta_seconds, 4),
        "cached_seconds": round(cached_seconds, 6),
        "speedup_delta_vs_full": round(speedup, 2),
        "speedup_cached_vs_full": round(cached_speedup, 1),
        "reuse_fraction_last_config": round(propagator.stats.reuse_fraction, 3),
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print()
    print(f"5-config sweep, scale={BENCH_SCALE}:")
    print(f"  scratch propagation  {full_seconds:8.3f} s")
    print(f"  delta recomputation  {delta_seconds:8.3f} s  ({speedup:.2f}x)")
    print(f"  (shared baseline     {baseline_seconds:8.3f} s, computed once)")
    print(f"  warm routing cache   {cached_seconds:8.5f} s  ({cached_speedup:.0f}x)")
    print(f"  (recorded in {os.path.basename(RESULT_PATH)})")

    assert speedup >= MIN_SPEEDUP, (
        f"delta sweep only {speedup:.2f}x faster (need >= {MIN_SPEEDUP}x)"
    )
    assert cached_speedup > speedup

    benchmark.pedantic(
        lambda: DeltaPropagator(baseline).propagate(policies[0][1]),
        rounds=1,
        iterations=1,
    )
