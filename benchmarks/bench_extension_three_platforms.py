"""Extension: three-way platform comparison (paper §2 future work).

The paper's related work ranks the approaches by vantage-point count —
Atlas (~10k physical VPs) < open resolvers (~300k, shrinking) <
Verfploeter (~3.8M passive VPs) — and flags a direct comparison with
open resolvers as future work.  This bench runs all three against the
same routing state.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.resolvers.platform import OpenResolverPlatform


def test_extension_three_platforms(
    benchmark, broot, broot_routing_may, broot_scan_may, broot_atlas_may
):
    platform = OpenResolverPlatform(broot.internet, shutdown_fraction=0.3)
    resolver_measurement = benchmark.pedantic(
        lambda: platform.measure(broot_routing_may, broot.service),
        rounds=1,
        iterations=1,
    )
    atlas_blocks = len(broot_atlas_may.responding_blocks())
    resolver_blocks = len(resolver_measurement.responding_blocks())
    verf_blocks = broot_scan_may.mapped_blocks
    rows = [
        ("RIPE Atlas", "physical probes", atlas_blocks,
         f"{broot_atlas_may.fraction_of('LAX'):.3f}"),
        ("Open resolvers", "recursive DNS", resolver_blocks,
         f"{resolver_measurement.fraction_of('LAX'):.3f}"),
        ("Verfploeter", "ICMP from anycast", verf_blocks,
         f"{broot_scan_may.catchment.fraction_of('LAX'):.3f}"),
    ]
    print()
    print(render_table(
        ["platform", "mechanism", "/24s covered", "LAX share"],
        rows,
        title="Extension: the three catchment-mapping approaches",
    ))
    print("(paper ordering at full scale: ~8.7k < ~300k < ~3.8M blocks)")
    assert atlas_blocks < resolver_blocks < verf_blocks
    # All three must agree on the majority site.
    shares = [float(row[3]) for row in rows]
    assert all(share > 0.5 for share in shares) or all(
        share < 0.5 for share in shares
    )
