"""Figure 8: sites seen per announced BGP prefix, by prefix length.

Paper: short (large) prefixes are usually split across sites — 75% of
prefixes /10 or shorter see multiple sites — while long prefixes are
mostly single-site; single-VP-per-prefix measurement loses precision
exactly where most address space lives.
"""

from __future__ import annotations

from repro.analysis.divisions import (
    format_prefix_division_table,
    prefix_site_distribution,
)


def test_figure8_prefix_divisions(benchmark, tangled, tangled_series):
    stable = tangled_series.stable_catchment()
    distribution = benchmark.pedantic(
        lambda: prefix_site_distribution(stable, tangled.internet),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_prefix_division_table(stable, tangled.internet))
    print("(paper: most short prefixes split across sites; long "
          "prefixes are single-site)")

    def multi_fraction(lengths):
        multi = total = 0
        for length in lengths:
            bucket = distribution.get(length, {})
            total += sum(bucket.values())
            multi += sum(count for sites, count in bucket.items() if sites > 1)
        return multi / total if total else 0.0

    lengths = sorted(distribution)
    assert lengths, "no announced prefixes with mapped blocks"
    short = [length for length in lengths if length <= 16]
    long = [length for length in lengths if length >= 20]
    if short and long:
        assert multi_fraction(short) > multi_fraction(long)
    # Long prefixes are overwhelmingly single-site.
    assert multi_fraction(long) < 0.5
