"""Ablation: single probe per /24 vs retrying.

DESIGN.md decision #3: the paper sends exactly one probe per block with
no retries, accepting ~55% coverage, and suggests retries as future
work.  A second attempt recovers the blocks lost to per-round churn
(but never the stable non-responders), quantifying the paper's
"could improve the response rate" remark.
"""

from __future__ import annotations


def test_ablation_retries(benchmark, broot, broot_vp, broot_routing_may):
    first = benchmark.pedantic(
        lambda: broot_vp.run_scan(
            routing=broot_routing_may, round_id=50, wire_level=False
        ),
        rounds=1,
        iterations=1,
    )
    # Retry pass: an immediate second attempt experiences fresh churn;
    # modelled as an independent round against the same routing.
    second = broot_vp.run_scan(
        routing=broot_routing_may, round_id=51, wire_level=False
    )
    combined = dict(second.catchment.items())
    combined.update(dict(first.catchment.items()))

    stable_responders = sum(
        1
        for block in broot.internet.blocks
        if broot.internet.host_model.is_stable_responder(
            block, broot.internet.country_of_block(block)
        )
    )
    print()
    print("Ablation: coverage of one probe per /24 vs probe+retry")
    print(f"  probed blocks:               {first.stats.probes_sent}")
    print(f"  stable responders (truth):   {stable_responders}")
    print(f"  single probe coverage:       {first.mapped_blocks}")
    print(f"  with one retry:              {len(combined)}")
    gain = len(combined) - first.mapped_blocks
    print(f"  retry gain:                  +{gain} blocks "
          f"({gain / first.mapped_blocks:.1%})")

    assert len(combined) > first.mapped_blocks
    # The retry can only recover churned responders, never the ~45% of
    # blocks with no responder at all.
    assert len(combined) <= stable_responders
