"""Table 1: catchment scan datasets.

Regenerates the paper's scan inventory — B-Root and Tangled measured
with both Atlas and Verfploeter — and benchmarks one Verfploeter round.
"""

from __future__ import annotations

from repro.analysis.report import render_table


def test_table1_scan_datasets(
    benchmark,
    broot,
    tangled,
    broot_vp,
    tangled_vp,
    broot_routing_may,
    broot_atlas_may,
):
    scan = benchmark.pedantic(
        lambda: broot_vp.run_scan(
            routing=broot_routing_may, dataset_id="SBV-5-15", wire_level=False
        ),
        rounds=1,
        iterations=1,
    )
    tangled_scan = tangled_vp.run_scan(dataset_id="STV-2-01", wire_level=False)
    tangled_atlas = tangled.atlas.measure(
        tangled_vp.routing_for(), tangled.service
    )
    rows = [
        ("SBA-5-15", "B-Root", "Atlas",
         f"{broot_atlas_may.responding_vps} VPs", "~minutes"),
        (scan.dataset_id, "B-Root", "Verfploeter",
         f"{scan.mapped_blocks} /24s", f"{scan.duration_seconds:.0f} s"),
        ("STA-2-01", "Tangled", "Atlas",
         f"{tangled_atlas.responding_vps} VPs", "~minutes"),
        (tangled_scan.dataset_id, "Tangled", "Verfploeter",
         f"{tangled_scan.mapped_blocks} /24s",
         f"{tangled_scan.duration_seconds:.0f} s"),
    ]
    print()
    print(render_table(
        ["Id", "Service", "Method", "Measurement", "Duration"],
        rows,
        title="Table 1: scans of anycast catchments (scaled ~1000x down)",
    ))
    print(f"probe traffic per round: {scan.stats.traffic_megabytes:.2f} MB "
          "(paper: ~128 MB at full scale)")
    assert scan.mapped_blocks > 0
    assert tangled_scan.mapped_blocks > 0
