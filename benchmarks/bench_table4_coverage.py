"""Table 4: coverage of Atlas vs Verfploeter.

The paper's headline: Verfploeter sees ~430x more /24 blocks than RIPE
Atlas, and ~77% of Atlas's blocks are also covered.  Benchmarks the
coverage comparison.
"""

from __future__ import annotations

from repro.analysis.coverage import format_coverage_table
from repro.core.comparison import compare_coverage


def test_table4_coverage(
    benchmark, broot, broot_scan_may, broot_atlas_may
):
    comparison = benchmark.pedantic(
        lambda: compare_coverage(broot_atlas_may, broot_scan_may, broot.internet),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_coverage_table(comparison))
    print("(paper: ratio ~430x, overlap ~77%)")
    # Shape assertions: the ratio is large and most Atlas blocks overlap.
    assert comparison.coverage_ratio > 50
    assert comparison.atlas_overlap_fraction > 0.5
    assert comparison.verf_unique_blocks > comparison.atlas_unique_blocks
