"""Shared state for the benchmark harness.

Each bench file regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see
the tables; without ``-s`` they are captured).  Expensive inputs —
scenarios, routing, scans, the 24-hour stability series — are computed
once per session here.

Scale note: the paper probes 6.4M /24s; the ``small`` scenario used
here covers ~8k /24s, so every count is ~1000x smaller while fractions
and shapes are comparable.
"""

from __future__ import annotations

import pytest

from repro.bgp.propagation import RoutingConfig, compute_routes
from repro.core.experiments import prepend_sweep, run_stability_series
from repro.core.scenarios import broot_like, nl_like, tangled_like
from repro.core.verfploeter import Verfploeter
from repro.load.estimator import LoadEstimate

#: The paper's B-Root day sees 2.2G queries; our topology has ~1000x
#: fewer blocks, so we target a proportionally scaled day.
BROOT_DAY_QUERIES = 2.2e6

BENCH_SCALE = "small"
STABILITY_ROUNDS = 96  # the paper's full 24-hour series (vectorised engine)


@pytest.fixture(scope="session")
def broot():
    return broot_like(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def tangled():
    return tangled_like(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def nl():
    return nl_like(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def broot_vp(broot):
    return Verfploeter(broot.internet, broot.service)


@pytest.fixture(scope="session")
def tangled_vp(tangled):
    return Verfploeter(tangled.internet, tangled.service)


@pytest.fixture(scope="session")
def broot_routing_may(broot):
    """Routing on the 'May 15' measurement date (era 1)."""
    return compute_routes(
        broot.internet, broot.service.default_policy(), config=RoutingConfig(era=1)
    )


@pytest.fixture(scope="session")
def broot_routing_april(broot):
    """Routing on the 'April 21' measurement date (era 0)."""
    return compute_routes(broot.internet, broot.service.default_policy())


@pytest.fixture(scope="session")
def broot_scan_may(broot_vp, broot_routing_may):
    return broot_vp.run_scan(
        routing=broot_routing_may, dataset_id="SBV-5-15", wire_level=False
    )


@pytest.fixture(scope="session")
def broot_scan_april(broot_vp, broot_routing_april):
    return broot_vp.run_scan(
        routing=broot_routing_april, round_id=1, dataset_id="SBV-4-21",
        wire_level=False,
    )


@pytest.fixture(scope="session")
def broot_atlas_may(broot, broot_routing_may):
    return broot.atlas.measure(broot_routing_may, broot.service, measurement_id=1)


@pytest.fixture(scope="session")
def broot_atlas_april(broot, broot_routing_april):
    return broot.atlas.measure(broot_routing_april, broot.service, measurement_id=0)


@pytest.fixture(scope="session")
def broot_load_april(broot):
    """DITL-like day before anycast (LB-4-12)."""
    return broot.day_load(
        "2017-04-12", day_index=0, target_total_queries=BROOT_DAY_QUERIES
    )


@pytest.fixture(scope="session")
def broot_load_may(broot):
    """Post-deployment day (LB-5-15)."""
    return broot.day_load(
        "2017-05-15", day_index=1, target_total_queries=BROOT_DAY_QUERIES
    )


@pytest.fixture(scope="session")
def broot_estimate_may(broot_load_may):
    return LoadEstimate(broot_load_may)


@pytest.fixture(scope="session")
def broot_estimate_april(broot_load_april):
    return LoadEstimate(broot_load_april)


@pytest.fixture(scope="session")
def broot_sweep(broot, broot_vp):
    return prepend_sweep(broot_vp, broot.atlas)


@pytest.fixture(scope="session")
def tangled_series(tangled_vp):
    return run_stability_series(
        tangled_vp, rounds=STABILITY_ROUNDS, interval_seconds=900.0, fast=True
    )
