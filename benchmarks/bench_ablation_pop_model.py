"""Ablation: multi-PoP ASes vs single-PoP ASes.

DESIGN.md decision #1: intra-AS catchment splits (paper §6.2) come from
multi-PoP ASes doing hot-potato egress.  Rebuilding the same topology
with every AS forced to a single PoP should erase nearly all splits.
"""

from __future__ import annotations

from repro.analysis.divisions import multi_site_fraction
from repro.bgp.propagation import compute_routes
from repro.core.scenarios import tangled_like


def _split_fraction(scenario):
    routing = compute_routes(scenario.internet, scenario.service.default_policy())
    return multi_site_fraction(routing.catchment_map(), scenario.internet)


def test_ablation_pop_model(benchmark):
    multi = tangled_like(scale="small")
    split_multi = benchmark.pedantic(
        lambda: _split_fraction(multi), rounds=1, iterations=1
    )

    # Same scenario, but no AS gets more than one PoP.
    from repro.core import scenarios as scenario_module
    from repro.topology.generator import TopologyConfig, build_internet

    tier1, transit, stub, blocks_cap, density = scenario_module.SCALES["small"]
    single_internet = build_internet(
        TopologyConfig(
            seed=1337,
            tier1_count=tier1,
            transit_count=transit,
            stub_count=stub,
            max_blocks_per_prefix=blocks_cap,
            transit_multi_pop_fraction=0.0,
            stub_multi_pop_fraction=0.0,
            seeded_ases=_single_pop_seeds(),
        )
    )
    # Reuse the same upstream names for a comparable service.
    service = multi.service
    from repro.anycast.service import AnycastService
    from repro.anycast.site import AnycastSite

    sites = [
        AnycastSite(
            site.code, site.name, site.country_code, site.latitude,
            site.longitude, single_internet.find_asn_by_name(
                multi.internet.ases[site.upstream_asn].name
            ),
        )
        for site in service.sites
    ]
    single_service = AnycastService(service.name, service.prefix, sites)
    routing = compute_routes(single_internet, single_service.default_policy())
    split_single = multi_site_fraction(routing.catchment_map(), single_internet)

    print()
    print("Ablation: intra-AS catchment splits")
    print(f"  multi-PoP topology (default): {split_multi:.3f} of ASes split")
    print(f"  single-PoP topology (ablated): {split_single:.3f} of ASes split")
    print("  (paper finds 12.7% of ASes split; splits require multi-PoP ASes)")
    assert split_single < split_multi
    # Tier-1s excepted (they keep one PoP here too), splits collapse.
    assert split_single < 0.02


def _single_pop_seeds():
    """The tangled seeded ASes, all reduced to their first PoP."""
    from repro.core.scenarios import _GIANTS
    from repro.topology.generator import SeededAS

    extras = (
        SeededAS("VULTR", "transit", "US", ("AU",), ((19, 1),),
                 provider_names=("TIER1-0", "TIER1-1")),
        SeededAS("WIDE", "transit", "JP", ("JP",), ((19, 1),),
                 provider_names=("TRANSIT-0",)),
        SeededAS("UT-NET", "transit", "NL", ("NL",), ((19, 1),),
                 provider_names=("TIER1-3",)),
        SeededAS("FIU", "transit", "US", ("US",), ((19, 1),),
                 provider_names=("TIER1-2",)),
        SeededAS("USC-NET", "transit", "US", ("US",), ((19, 1),),
                 provider_names=("TIER1-0",)),
        SeededAS("DKHOST", "transit", "DK", ("DK",), ((19, 1),),
                 provider_names=("TIER1-3",)),
    )
    singled_giants = tuple(
        SeededAS(
            spec.name, spec.tier, spec.country_code, (spec.pop_countries[0],),
            spec.prefix_plan, spec.flipper, spec.block_density,
            spec.provider_names,
        )
        for spec in _GIANTS
    )
    return singled_giants + extras
