"""Figure 9: catchment stability over a day of repeated measurements.

Paper (96 rounds / 24 h): ~95% of VPs stay stable and keep their
catchment; ~2.4% churn to/from non-responsive per round; only ~0.1%
flip catchment.  We run a 24-round slice with identical spacing.
"""

from __future__ import annotations

from repro.analysis.flips import format_stability_table
from repro.core.experiments import run_stability_series


def test_figure9_stability(benchmark, tangled_vp, tangled_series):
    series = tangled_series
    benchmark.pedantic(
        lambda: run_stability_series(tangled_vp, rounds=2, interval_seconds=900.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_stability_table(series, every=4))
    responding = series.median_of("stable") + series.median_of("flipped")
    print(f"(paper medians at full scale: stable 3.54M of 3.71M responding "
          f"~95%; to/from-NR ~2.4%; flipped ~0.1%)")

    stable = series.median_of("stable")
    churn = series.median_of("to_nr")
    flipped = series.median_of("flipped")
    assert stable / (responding or 1) > 0.9
    assert 0.01 < churn / (responding or 1) < 0.06
    assert flipped / (responding or 1) < 0.01
